//! Online calibration of application utility surfaces.
//!
//! When an application arrives (event E2) the runtime must learn its
//! `(power, perf)` surface. Exhaustive measurement (432 settings) is the
//! ground-truth path; the production path samples a fraction of the
//! settings (10% after Fig. 7's calibration) and completes the rest by
//! collaborative filtering against the corpus of previously-seen
//! applications.

use powermed_cf::als::{Completion, FitConfig};
use powermed_cf::matrix::UtilityMatrix;
use powermed_cf::sampler::SparseSampler;
use powermed_server::knobs::KnobSetting;
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::profile::AppProfile;

use crate::measurement::AppMeasurement;

/// Builds [`AppMeasurement`]s, either exhaustively or by sparse sampling
/// plus collaborative filtering.
#[derive(Debug, Clone)]
pub struct Calibrator {
    spec: ServerSpec,
    /// Fraction of the knob grid measured online.
    sampling_fraction: f64,
    fit: FitConfig,
    corpus: UtilityMatrix,
    seed: u64,
}

impl Calibrator {
    /// Creates a calibrator measuring `sampling_fraction` of the grid
    /// online (the paper fixes 10%).
    ///
    /// # Panics
    ///
    /// Panics if `sampling_fraction` is not within `(0, 1]`.
    pub fn new(spec: ServerSpec, sampling_fraction: f64) -> Self {
        assert!(
            sampling_fraction > 0.0 && sampling_fraction <= 1.0,
            "sampling fraction in (0, 1]"
        );
        let columns = spec.knob_grid().len();
        Self {
            spec,
            sampling_fraction,
            fit: FitConfig::default(),
            corpus: UtilityMatrix::new(columns),
            seed: 17,
        }
    }

    /// Overrides the RNG seed for sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured sampling fraction.
    pub fn sampling_fraction(&self) -> f64 {
        self.sampling_fraction
    }

    /// Number of previously-seen applications in the corpus.
    pub fn corpus_size(&self) -> usize {
        self.corpus.app_count()
    }

    /// Adds a fully measured application to the corpus (dense row).
    pub fn add_to_corpus(&mut self, m: &AppMeasurement) {
        for (i, _) in m.grid().iter().enumerate() {
            self.corpus.insert(m.name(), i, m.power(i), m.perf(i));
        }
    }

    /// Seeds the corpus by exhaustively profiling `profiles` (the
    /// "previously seen applications" the paper's matrix starts with).
    pub fn seed_corpus(&mut self, profiles: &[AppProfile]) {
        // The cached surface is exactly `AppMeasurement::exhaustive`
        // for any profile (nominal intensity, phases ignored), so the
        // corpus can always share it.
        for p in profiles {
            let m = crate::cache::MeasurementCache::global().measure(&self.spec, p);
            self.add_to_corpus(&m);
        }
    }

    /// Ground-truth calibration: probe every grid setting.
    pub fn calibrate_exhaustive(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> (Watts, f64),
    ) -> AppMeasurement {
        self.try_calibrate_exhaustive(name, min_cores, |knob| Some(probe(knob)))
            .expect("infallible probe")
    }

    /// Fallible ground-truth calibration: probe every grid setting, or
    /// return `None` as soon as one probe fails (the application
    /// departed mid-calibration). No partial surface is produced.
    pub fn try_calibrate_exhaustive(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> Option<(Watts, f64)>,
    ) -> Option<AppMeasurement> {
        let grid = self.spec.knob_grid();
        let mut power = Vec::with_capacity(grid.len());
        let mut perf = Vec::with_capacity(grid.len());
        for knob in grid.iter() {
            let (p, q) = probe(knob)?;
            power.push(p);
            perf.push(q);
        }
        Some(AppMeasurement::from_vectors(
            name, grid, power, perf, min_cores,
        ))
    }

    /// Online calibration: probe `sampling_fraction` of the grid and
    /// estimate the rest by collaborative filtering against the corpus.
    ///
    /// Falls back to exhaustive calibration when the corpus has fewer
    /// than two applications (nothing to collaborate with).
    ///
    /// Returns the surface plus the number of settings actually probed.
    pub fn calibrate_online(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> (Watts, f64),
    ) -> (AppMeasurement, usize) {
        self.try_calibrate_online(name, min_cores, |knob| Some(probe(knob)))
            .expect("infallible probe")
    }

    /// Fallible online calibration: like [`Self::calibrate_online`] but
    /// returns `None` as soon as one probe fails (the application
    /// departed mid-calibration). No partial surface is produced.
    pub fn try_calibrate_online(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> Option<(Watts, f64)>,
    ) -> Option<(AppMeasurement, usize)> {
        let grid = self.spec.knob_grid();
        if self.corpus.app_count() < 2 {
            let m = self.try_calibrate_exhaustive(name, min_cores, probe)?;
            let n = m.grid().len();
            return Some((m, n));
        }
        let sampler = SparseSampler::new(grid.len(), self.seed);
        let cols = sampler.columns_for(self.sampling_fraction);

        let mut power_obs = Vec::with_capacity(cols.len());
        let mut perf_obs = Vec::with_capacity(cols.len());
        for &c in &cols {
            let knob = grid.get(c).expect("sampled column on grid");
            let (p, q) = probe(knob)?;
            power_obs.push((c, p.value()));
            perf_obs.push((c, q));
        }

        let (_, power_entries) = self.corpus.power_channel();
        let (_, perf_entries) = self.corpus.perf_channel();
        let rows = self.corpus.app_count();
        let power_model = Completion::fit(rows, grid.len(), &power_entries, self.fit);
        let perf_model = Completion::fit(rows, grid.len(), &perf_entries, self.fit);

        let mut power_pred = power_model.predict_row(&power_model.fold_in(&power_obs));
        let mut perf_pred = perf_model.predict_row(&perf_model.fold_in(&perf_obs));
        for (c, v) in &power_obs {
            power_pred[*c] = *v;
        }
        for (c, v) in &perf_obs {
            perf_pred[*c] = *v;
        }
        for v in power_pred.iter_mut().chain(perf_pred.iter_mut()) {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        }
        let probed = cols.len();
        let m = AppMeasurement::from_vectors(
            name,
            grid,
            power_pred.into_iter().map(Watts::new).collect(),
            perf_pred,
            min_cores,
        );
        Some((m, probed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;
    use powermed_workloads::generator::WorkloadGenerator;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn probe_for(profile: AppProfile) -> impl FnMut(KnobSetting) -> (Watts, f64) {
        let spec = spec();
        move |knob| {
            let op = profile.evaluate(&spec, knob);
            (op.dynamic_power, op.throughput)
        }
    }

    #[test]
    fn exhaustive_matches_direct_measurement() {
        let cal = Calibrator::new(spec(), 0.1);
        let m = cal.calibrate_exhaustive("kmeans", 4, probe_for(catalog::kmeans()));
        let direct = AppMeasurement::exhaustive(&spec(), &catalog::kmeans());
        for i in 0..m.grid().len() {
            assert_eq!(m.power(i), direct.power(i));
            assert_eq!(m.perf(i), direct.perf(i));
        }
    }

    #[test]
    fn empty_corpus_falls_back_to_exhaustive() {
        let cal = Calibrator::new(spec(), 0.1);
        let (m, probed) = cal.calibrate_online("stream", 4, probe_for(catalog::stream()));
        assert_eq!(probed, 432, "no corpus: every setting measured");
        assert_eq!(m.name(), "stream");
    }

    #[test]
    fn online_probes_only_the_sampled_fraction() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        assert_eq!(cal.corpus_size(), 12);
        let mut count = 0usize;
        let mut probe = probe_for(catalog::stream());
        let (_, probed) = cal.calibrate_online("stream2", 4, |k| {
            count += 1;
            probe(k)
        });
        assert_eq!(probed, count);
        assert!((40..=48).contains(&count), "≈10% of 432, got {count}");
    }

    #[test]
    fn online_estimate_close_to_truth_at_ten_percent() {
        // Corpus: catalog variants (the new app itself is NOT in it).
        let mut cal = Calibrator::new(spec(), 0.1);
        let mut gen = WorkloadGenerator::new(5);
        let corpus_profiles: Vec<AppProfile> = gen.variant_corpus(24, 0.25);
        cal.seed_corpus(&corpus_profiles);

        let target = catalog::bfs();
        let truth = AppMeasurement::exhaustive(&spec(), &target);
        let (est, _) = cal.calibrate_online("bfs-new", 4, probe_for(target));

        // Relative power error averaged over the grid should be small
        // (Fig. 7: at 10% sampling the system stays within its cap).
        let mut rel_err = 0.0;
        for i in 0..truth.grid().len() {
            let t = truth.power(i).value();
            rel_err += (est.power(i).value() - t).abs() / t;
        }
        rel_err /= truth.grid().len() as f64;
        assert!(rel_err < 0.15, "mean relative power error {rel_err:.3}");
    }

    #[test]
    fn estimates_are_physical() {
        let mut cal = Calibrator::new(spec(), 0.05);
        cal.seed_corpus(&catalog::all());
        let (est, _) = cal.calibrate_online("x264-new", 4, probe_for(catalog::x264()));
        for i in 0..est.grid().len() {
            assert!(est.power(i).value() >= 0.0);
            assert!(est.perf(i) >= 0.0);
            assert!(est.power(i).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn bad_fraction_rejected() {
        let _ = Calibrator::new(spec(), 0.0);
    }

    #[test]
    fn try_exhaustive_aborts_cleanly_when_a_probe_fails() {
        let cal = Calibrator::new(spec(), 0.1);
        let mut probe = probe_for(catalog::kmeans());
        let mut calls = 0usize;
        // The app "departs" after 10 probes: no panic, no partial
        // surface — just None.
        let result = cal.try_calibrate_exhaustive("kmeans", 4, |k| {
            calls += 1;
            (calls <= 10).then(|| probe(k))
        });
        assert!(result.is_none());
        assert_eq!(calls, 11, "stops at the first failed probe");
    }

    #[test]
    fn try_online_aborts_cleanly_when_a_probe_fails() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        let result = cal.try_calibrate_online("gone", 4, |_| None);
        assert!(result.is_none());
    }

    #[test]
    fn try_variants_match_the_infallible_paths() {
        let cal = Calibrator::new(spec(), 0.1);
        let m = cal.calibrate_exhaustive("bfs", 4, probe_for(catalog::bfs()));
        let mut probe = probe_for(catalog::bfs());
        let t = cal
            .try_calibrate_exhaustive("bfs", 4, |k| Some(probe(k)))
            .unwrap();
        for i in 0..m.grid().len() {
            assert_eq!(m.power(i), t.power(i));
            assert_eq!(m.perf(i), t.perf(i));
        }
    }
}
