//! Online calibration of application utility surfaces.
//!
//! When an application arrives (event E2) the runtime must learn its
//! `(power, perf)` surface. Exhaustive measurement (432 settings) is the
//! ground-truth path; the production path samples a fraction of the
//! settings (10% after Fig. 7's calibration) and completes the rest by
//! collaborative filtering against the corpus of previously-seen
//! applications.

use std::collections::BTreeSet;

use powermed_cf::als::{Completion, FitConfig, FoldedRow};
use powermed_cf::matrix::UtilityMatrix;
use powermed_cf::sampler::SparseSampler;
use powermed_profiles::{AppFingerprint, ProbeSample, StoredProfile};
use powermed_server::knobs::KnobSetting;
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::profile::AppProfile;

use crate::measurement::AppMeasurement;

/// The result of one online calibration, rich enough to republish to
/// the profile knowledge plane: the surface, the probe accounting, and
/// the observations + folded rows that produced it.
#[derive(Debug, Clone)]
pub struct OnlineCalibration {
    /// The completed utility surface.
    pub measurement: AppMeasurement,
    /// Settings actually probed on the server.
    pub probed: usize,
    /// Scheduled settings satisfied from the prior instead of probed.
    pub skipped: usize,
    /// Every observation backing the surface (fresh probes plus prior
    /// samples), sorted by column — the payload a store republication
    /// carries.
    pub samples: Vec<ProbeSample>,
    /// Folded-in row for the power channel (zeroed on the exhaustive
    /// fallback, where no CF model exists).
    pub power_row: FoldedRow,
    /// Folded-in row for the performance channel.
    pub perf_row: FoldedRow,
}

/// Builds [`AppMeasurement`]s, either exhaustively or by sparse sampling
/// plus collaborative filtering.
#[derive(Debug, Clone)]
pub struct Calibrator {
    spec: ServerSpec,
    /// Fraction of the knob grid measured online.
    sampling_fraction: f64,
    fit: FitConfig,
    corpus: UtilityMatrix,
    /// Fingerprints of profiles already folded into the corpus, so the
    /// same workload is never double-weighted however it arrives
    /// (catalog seeding, store-derived sparse rows, repeat seeding).
    seeded: BTreeSet<u64>,
    seed: u64,
}

impl Calibrator {
    /// Creates a calibrator measuring `sampling_fraction` of the grid
    /// online (the paper fixes 10%).
    ///
    /// # Panics
    ///
    /// Panics if `sampling_fraction` is not within `(0, 1]`.
    pub fn new(spec: ServerSpec, sampling_fraction: f64) -> Self {
        assert!(
            sampling_fraction > 0.0 && sampling_fraction <= 1.0,
            "sampling fraction in (0, 1]"
        );
        let columns = spec.knob_grid().len();
        Self {
            spec,
            sampling_fraction,
            fit: FitConfig::default(),
            corpus: UtilityMatrix::new(columns),
            seeded: BTreeSet::new(),
            seed: 17,
        }
    }

    /// Overrides the RNG seed for sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured sampling fraction.
    pub fn sampling_fraction(&self) -> f64 {
        self.sampling_fraction
    }

    /// Number of previously-seen applications in the corpus.
    pub fn corpus_size(&self) -> usize {
        self.corpus.app_count()
    }

    /// Memoization key for the corpus completion models: the exact
    /// corpus content plus every [`FitConfig`] field. Two calibrators
    /// with equal keys would fit bit-identical `(power, perf)` model
    /// pairs, so the pair can be shared through the measurement cache.
    fn corpus_model_key(&self) -> u64 {
        let mut h = self.corpus.content_fingerprint();
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.fit.factors as u64);
        mix(self.fit.lambda.to_bits());
        mix(self.fit.sweeps as u64);
        mix(self.fit.seed);
        h
    }

    /// Adds a fully measured application to the corpus (dense row).
    pub fn add_to_corpus(&mut self, m: &AppMeasurement) {
        for (i, _) in m.grid().iter().enumerate() {
            self.corpus.insert(m.name(), i, m.power(i), m.perf(i));
        }
    }

    /// Seeds the corpus by exhaustively profiling `profiles` (the
    /// "previously seen applications" the paper's matrix starts with).
    /// Profiles whose fingerprint is already in the corpus — under any
    /// name, through any seeding path — are skipped, so repeat seeding
    /// never double-weights a workload's row in the completion model.
    pub fn seed_corpus(&mut self, profiles: &[AppProfile]) {
        // The cached surface is exactly `AppMeasurement::exhaustive`
        // for any profile (nominal intensity, phases ignored), so the
        // corpus can always share it.
        for p in profiles {
            if !self.seeded.insert(AppFingerprint::of(p).value()) {
                continue;
            }
            let m = crate::cache::MeasurementCache::global().measure(&self.spec, p);
            self.add_to_corpus(&m);
        }
    }

    /// Seeds the corpus with a *sparse* row from the profile knowledge
    /// plane: measured `(column, power, perf)` samples for a workload
    /// identified only by fingerprint. Returns `false` (and does
    /// nothing) when that fingerprint is already represented, so a
    /// store-derived row and a catalog row for the same workload
    /// collapse to one.
    pub fn seed_sparse_row(
        &mut self,
        fingerprint: AppFingerprint,
        samples: &[ProbeSample],
    ) -> bool {
        if samples.is_empty() || !self.seeded.insert(fingerprint.value()) {
            return false;
        }
        let name = format!("store:{fingerprint}");
        for s in samples {
            self.corpus
                .insert(&name, s.col, Watts::new(s.power_w), s.perf);
        }
        true
    }

    /// Ground-truth calibration: probe every grid setting.
    pub fn calibrate_exhaustive(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> (Watts, f64),
    ) -> AppMeasurement {
        self.try_calibrate_exhaustive(name, min_cores, |knob| Some(probe(knob)))
            .expect("infallible probe")
    }

    /// Fallible ground-truth calibration: probe every grid setting, or
    /// return `None` as soon as one probe fails (the application
    /// departed mid-calibration). No partial surface is produced.
    pub fn try_calibrate_exhaustive(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> Option<(Watts, f64)>,
    ) -> Option<AppMeasurement> {
        let grid = self.spec.knob_grid();
        let mut power = Vec::with_capacity(grid.len());
        let mut perf = Vec::with_capacity(grid.len());
        for knob in grid.iter() {
            let (p, q) = probe(knob)?;
            power.push(p);
            perf.push(q);
        }
        Some(AppMeasurement::from_vectors(
            name, grid, power, perf, min_cores,
        ))
    }

    /// Online calibration: probe `sampling_fraction` of the grid and
    /// estimate the rest by collaborative filtering against the corpus.
    ///
    /// Falls back to exhaustive calibration when the corpus has fewer
    /// than two applications (nothing to collaborate with).
    ///
    /// Returns the surface plus the number of settings actually probed.
    pub fn calibrate_online(
        &self,
        name: &str,
        min_cores: usize,
        mut probe: impl FnMut(KnobSetting) -> (Watts, f64),
    ) -> (AppMeasurement, usize) {
        self.try_calibrate_online(name, min_cores, |knob| Some(probe(knob)))
            .expect("infallible probe")
    }

    /// Fallible online calibration: like [`Self::calibrate_online`] but
    /// returns `None` as soon as one probe fails (the application
    /// departed mid-calibration). No partial surface is produced.
    pub fn try_calibrate_online(
        &self,
        name: &str,
        min_cores: usize,
        probe: impl FnMut(KnobSetting) -> Option<(Watts, f64)>,
    ) -> Option<(AppMeasurement, usize)> {
        self.try_calibrate_online_seeded(name, min_cores, None, probe)
            .map(|oc| (oc.measurement, oc.probed))
    }

    /// Online calibration with an optional warm-start prior from the
    /// profile knowledge plane. Probe points the prior already covers
    /// are satisfied from its samples instead of being run, so a warm
    /// admission executes a strict subset of the cold probe schedule
    /// (possibly the empty subset); every prior sample also feeds the
    /// fold-in, tightening the completion beyond what the sparse
    /// schedule alone would see. With `prior = None` this is
    /// bit-identical to [`Self::try_calibrate_online`].
    pub fn try_calibrate_online_seeded(
        &self,
        name: &str,
        min_cores: usize,
        prior: Option<&StoredProfile>,
        mut probe: impl FnMut(KnobSetting) -> Option<(Watts, f64)>,
    ) -> Option<OnlineCalibration> {
        let grid = self.spec.knob_grid();
        let covered: std::collections::BTreeMap<usize, (f64, f64)> = prior
            .map(|p| {
                p.samples
                    .iter()
                    .filter(|s| s.col < grid.len())
                    .map(|s| (s.col, (s.power_w, s.perf)))
                    .collect()
            })
            .unwrap_or_default();
        if self.corpus.app_count() < 2 {
            // Nothing to collaborate with: exhaustive ground truth, with
            // prior-covered settings taken on faith instead of probed.
            let mut power = Vec::with_capacity(grid.len());
            let mut perf = Vec::with_capacity(grid.len());
            let mut probed = 0usize;
            for (c, knob) in grid.iter().enumerate() {
                let (p, q) = match covered.get(&c) {
                    Some(&(p, q)) => (Watts::new(p), q),
                    None => {
                        probed += 1;
                        probe(knob)?
                    }
                };
                power.push(p);
                perf.push(q);
            }
            let samples = power
                .iter()
                .zip(&perf)
                .enumerate()
                .map(|(c, (p, q))| ProbeSample {
                    col: c,
                    power_w: p.value(),
                    perf: *q,
                })
                .collect();
            let k = self.fit.factors;
            let skipped = grid.len() - probed;
            return Some(OnlineCalibration {
                measurement: AppMeasurement::from_vectors(name, grid, power, perf, min_cores),
                probed,
                skipped,
                samples,
                power_row: FoldedRow::new(0.0, vec![0.0; k]),
                perf_row: FoldedRow::new(0.0, vec![0.0; k]),
            });
        }
        let sampler = SparseSampler::new(grid.len(), self.seed);
        let cols = sampler.columns_for(self.sampling_fraction);

        let mut power_obs = Vec::with_capacity(cols.len());
        let mut perf_obs = Vec::with_capacity(cols.len());
        let mut probed = 0usize;
        let mut skipped = 0usize;
        for &c in &cols {
            let knob = grid.get(c).expect("sampled column on grid");
            let (p, q) = match covered.get(&c) {
                Some(&(p, q)) => {
                    skipped += 1;
                    (Watts::new(p), q)
                }
                None => {
                    probed += 1;
                    probe(knob)?
                }
            };
            power_obs.push((c, p.value()));
            perf_obs.push((c, q));
        }
        // Prior samples outside the schedule are extra observations for
        // free; appended after the scheduled columns so the prior-free
        // path sums in exactly the historical order.
        for (&c, &(p, q)) in &covered {
            if cols.binary_search(&c).is_err() {
                power_obs.push((c, p));
                perf_obs.push((c, q));
            }
        }

        // The fits depend only on corpus content + fit config, both of
        // which the key fingerprints exactly, so every admission against
        // an unchanged corpus (every warm re-admission, every server in
        // a sweep sharing a catalog) reuses one bit-identical pair.
        let models = crate::cache::MeasurementCache::global().completion_pair(
            self.corpus_model_key(),
            || {
                let (_, power_entries) = self.corpus.power_channel();
                let (_, perf_entries) = self.corpus.perf_channel();
                let rows = self.corpus.app_count();
                (
                    Completion::fit(rows, grid.len(), &power_entries, self.fit),
                    Completion::fit(rows, grid.len(), &perf_entries, self.fit),
                )
            },
        );
        let (power_model, perf_model) = (&models.0, &models.1);

        let power_row = power_model.fold_in(&power_obs);
        let perf_row = perf_model.fold_in(&perf_obs);
        let mut power_pred = power_model.predict_row(&power_row);
        let mut perf_pred = perf_model.predict_row(&perf_row);
        for (c, v) in &power_obs {
            power_pred[*c] = *v;
        }
        for (c, v) in &perf_obs {
            perf_pred[*c] = *v;
        }
        for v in power_pred.iter_mut().chain(perf_pred.iter_mut()) {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
            }
        }
        let mut samples: Vec<ProbeSample> = power_obs
            .iter()
            .zip(&perf_obs)
            .map(|(&(c, p), &(_, q))| ProbeSample {
                col: c,
                power_w: p,
                perf: q,
            })
            .collect();
        samples.sort_by_key(|s| s.col);
        let m = AppMeasurement::from_vectors(
            name,
            grid,
            power_pred.into_iter().map(Watts::new).collect(),
            perf_pred,
            min_cores,
        );
        Some(OnlineCalibration {
            measurement: m,
            probed,
            skipped,
            samples,
            power_row,
            perf_row,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;
    use powermed_workloads::generator::WorkloadGenerator;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn probe_for(profile: AppProfile) -> impl FnMut(KnobSetting) -> (Watts, f64) {
        let spec = spec();
        move |knob| {
            let op = profile.evaluate(&spec, knob);
            (op.dynamic_power, op.throughput)
        }
    }

    #[test]
    fn exhaustive_matches_direct_measurement() {
        let cal = Calibrator::new(spec(), 0.1);
        let m = cal.calibrate_exhaustive("kmeans", 4, probe_for(catalog::kmeans()));
        let direct = AppMeasurement::exhaustive(&spec(), &catalog::kmeans());
        for i in 0..m.grid().len() {
            assert_eq!(m.power(i), direct.power(i));
            assert_eq!(m.perf(i), direct.perf(i));
        }
    }

    #[test]
    fn empty_corpus_falls_back_to_exhaustive() {
        let cal = Calibrator::new(spec(), 0.1);
        let (m, probed) = cal.calibrate_online("stream", 4, probe_for(catalog::stream()));
        assert_eq!(probed, 432, "no corpus: every setting measured");
        assert_eq!(m.name(), "stream");
    }

    #[test]
    fn online_probes_only_the_sampled_fraction() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        assert_eq!(cal.corpus_size(), 12);
        let mut count = 0usize;
        let mut probe = probe_for(catalog::stream());
        let (_, probed) = cal.calibrate_online("stream2", 4, |k| {
            count += 1;
            probe(k)
        });
        assert_eq!(probed, count);
        assert!((40..=48).contains(&count), "≈10% of 432, got {count}");
    }

    #[test]
    fn online_estimate_close_to_truth_at_ten_percent() {
        // Corpus: catalog variants (the new app itself is NOT in it).
        let mut cal = Calibrator::new(spec(), 0.1);
        let mut gen = WorkloadGenerator::new(5);
        let corpus_profiles: Vec<AppProfile> = gen.variant_corpus(24, 0.25);
        cal.seed_corpus(&corpus_profiles);

        let target = catalog::bfs();
        let truth = AppMeasurement::exhaustive(&spec(), &target);
        let (est, _) = cal.calibrate_online("bfs-new", 4, probe_for(target));

        // Relative power error averaged over the grid should be small
        // (Fig. 7: at 10% sampling the system stays within its cap).
        let mut rel_err = 0.0;
        for i in 0..truth.grid().len() {
            let t = truth.power(i).value();
            rel_err += (est.power(i).value() - t).abs() / t;
        }
        rel_err /= truth.grid().len() as f64;
        assert!(rel_err < 0.15, "mean relative power error {rel_err:.3}");
    }

    #[test]
    fn estimates_are_physical() {
        let mut cal = Calibrator::new(spec(), 0.05);
        cal.seed_corpus(&catalog::all());
        let (est, _) = cal.calibrate_online("x264-new", 4, probe_for(catalog::x264()));
        for i in 0..est.grid().len() {
            assert!(est.power(i).value() >= 0.0);
            assert!(est.perf(i) >= 0.0);
            assert!(est.power(i).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn bad_fraction_rejected() {
        let _ = Calibrator::new(spec(), 0.0);
    }

    #[test]
    fn try_exhaustive_aborts_cleanly_when_a_probe_fails() {
        let cal = Calibrator::new(spec(), 0.1);
        let mut probe = probe_for(catalog::kmeans());
        let mut calls = 0usize;
        // The app "departs" after 10 probes: no panic, no partial
        // surface — just None.
        let result = cal.try_calibrate_exhaustive("kmeans", 4, |k| {
            calls += 1;
            (calls <= 10).then(|| probe(k))
        });
        assert!(result.is_none());
        assert_eq!(calls, 11, "stops at the first failed probe");
    }

    #[test]
    fn try_online_aborts_cleanly_when_a_probe_fails() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        let result = cal.try_calibrate_online("gone", 4, |_| None);
        assert!(result.is_none());
    }

    #[test]
    fn seeding_the_same_profiles_twice_does_not_duplicate_rows() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        assert_eq!(cal.corpus_size(), 12);
        cal.seed_corpus(&catalog::all());
        assert_eq!(cal.corpus_size(), 12, "repeat seeding must be a no-op");
    }

    #[test]
    fn sparse_row_and_catalog_row_for_one_workload_collapse() {
        let mut cal = Calibrator::new(spec(), 0.1);
        let fp = AppFingerprint::of(&catalog::stream());
        let samples = [ProbeSample {
            col: 0,
            power_w: 10.0,
            perf: 100.0,
        }];
        assert!(cal.seed_sparse_row(fp, &samples));
        assert_eq!(cal.corpus_size(), 1);
        // The catalog row for the same workload is skipped...
        cal.seed_corpus(&catalog::all());
        assert_eq!(cal.corpus_size(), 12, "stream arrived via the store");
        // ...and so is a second copy of the sparse row.
        assert!(!cal.seed_sparse_row(fp, &samples));
    }

    #[test]
    fn empty_sparse_row_is_rejected_without_claiming_the_fingerprint() {
        let mut cal = Calibrator::new(spec(), 0.1);
        let fp = AppFingerprint::of(&catalog::bfs());
        assert!(!cal.seed_sparse_row(fp, &[]));
        assert!(cal.seed_sparse_row(
            fp,
            &[ProbeSample {
                col: 1,
                power_w: 9.0,
                perf: 50.0,
            }]
        ));
    }

    #[test]
    fn seeded_with_no_prior_matches_the_plain_online_path() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        let mut probe_a = probe_for(catalog::stream());
        let (plain, probed_plain) = cal
            .try_calibrate_online("s", 4, |k| Some(probe_a(k)))
            .unwrap();
        let mut probe_b = probe_for(catalog::stream());
        let seeded = cal
            .try_calibrate_online_seeded("s", 4, None, |k| Some(probe_b(k)))
            .unwrap();
        assert_eq!(seeded.probed, probed_plain);
        assert_eq!(seeded.skipped, 0);
        for i in 0..plain.grid().len() {
            assert_eq!(plain.power(i), seeded.measurement.power(i));
            assert_eq!(plain.perf(i), seeded.measurement.perf(i));
        }
    }

    #[test]
    fn full_prior_makes_a_warm_admission_probe_nothing() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        // Cold pass: measure and keep the observations as the prior.
        let mut probe = probe_for(catalog::bfs());
        let cold = cal
            .try_calibrate_online_seeded("b", 4, None, |k| Some(probe(k)))
            .unwrap();
        assert!(cold.probed > 0);
        let mut prior = StoredProfile::tombstone(1, 0);
        prior.confidence = 1.0;
        prior.samples = cold.samples.clone();
        // Warm pass: every scheduled column is covered, so zero probes
        // run and the surface comes out bit-identical (the sampler is
        // deterministic, so cold and warm share one schedule).
        let warm = cal
            .try_calibrate_online_seeded("b", 4, Some(&prior), |_| {
                panic!("a fully covered admission must not probe")
            })
            .unwrap();
        assert_eq!(warm.probed, 0);
        assert_eq!(warm.skipped, cold.probed);
        for i in 0..warm.measurement.grid().len() {
            assert_eq!(warm.measurement.power(i), cold.measurement.power(i));
            assert_eq!(warm.measurement.perf(i), cold.measurement.perf(i));
        }
    }

    #[test]
    fn partial_prior_probes_only_the_uncovered_schedule() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        let mut probe = probe_for(catalog::x264());
        let cold = cal
            .try_calibrate_online_seeded("x", 4, None, |k| Some(probe(k)))
            .unwrap();
        // Prior covering half the cold observations.
        let mut prior = StoredProfile::tombstone(1, 0);
        prior.confidence = 1.0;
        prior.samples = cold.samples.iter().step_by(2).copied().collect();
        let half = prior.samples.len();
        let mut probe2 = probe_for(catalog::x264());
        let warm = cal
            .try_calibrate_online_seeded("x", 4, Some(&prior), |k| Some(probe2(k)))
            .unwrap();
        assert_eq!(warm.skipped, half);
        assert_eq!(warm.probed, cold.probed - half);
        assert_eq!(
            warm.samples.len(),
            cold.samples.len(),
            "union of fresh + prior covers the same columns"
        );
    }

    #[test]
    fn exhaustive_fallback_honours_the_prior() {
        let cal = Calibrator::new(spec(), 0.1); // empty corpus
        let mut probe = probe_for(catalog::kmeans());
        let cold = cal
            .try_calibrate_online_seeded("k", 4, None, |k| Some(probe(k)))
            .unwrap();
        assert_eq!(cold.probed, 432);
        let mut prior = StoredProfile::tombstone(1, 0);
        prior.confidence = 1.0;
        prior.samples = cold.samples.clone();
        let warm = cal
            .try_calibrate_online_seeded("k", 4, Some(&prior), |_| {
                panic!("fully covered exhaustive fallback must not probe")
            })
            .unwrap();
        assert_eq!(warm.probed, 0);
        assert_eq!(warm.skipped, 432);
        for i in 0..warm.measurement.grid().len() {
            assert_eq!(warm.measurement.power(i), cold.measurement.power(i));
        }
    }

    #[test]
    fn repeated_admissions_share_one_model_fit() {
        let mut cal = Calibrator::new(spec(), 0.1);
        cal.seed_corpus(&catalog::all());
        let cache = crate::cache::MeasurementCache::global();
        let misses_before = cache.model_misses();
        let mut probe = probe_for(catalog::stream());
        let first = cal
            .try_calibrate_online_seeded("s1", 4, None, |k| Some(probe(k)))
            .unwrap();
        // Other tests share the global cache, so counter checks are
        // lower bounds rather than exact deltas.
        let fits_run = cache.model_misses() - misses_before;
        assert!(
            fits_run <= 1,
            "one pair fit per corpus state, got {fits_run}"
        );
        // Same corpus, different app: the pair must come from the cache
        // and the result must match the first admission bit for bit.
        let hits_before = cache.model_hits();
        let mut probe2 = probe_for(catalog::stream());
        let second = cal
            .try_calibrate_online_seeded("s2", 4, None, |k| Some(probe2(k)))
            .unwrap();
        assert!(cache.model_hits() > hits_before);
        for i in 0..first.measurement.grid().len() {
            assert_eq!(first.measurement.power(i), second.measurement.power(i));
            assert_eq!(first.measurement.perf(i), second.measurement.perf(i));
        }
        // Growing the corpus moves the key: the stale pair is not reused.
        let mut gen = WorkloadGenerator::new(3);
        cal.seed_corpus(&gen.variant_corpus(2, 0.25));
        let misses_mid = cache.model_misses();
        let mut probe3 = probe_for(catalog::stream());
        cal.try_calibrate_online_seeded("s3", 4, None, |k| Some(probe3(k)))
            .unwrap();
        assert!(cache.model_misses() > misses_mid);
    }

    #[test]
    fn try_variants_match_the_infallible_paths() {
        let cal = Calibrator::new(spec(), 0.1);
        let m = cal.calibrate_exhaustive("bfs", 4, probe_for(catalog::bfs()));
        let mut probe = probe_for(catalog::bfs());
        let t = cal
            .try_calibrate_exhaustive("bfs", 4, |k| Some(probe(k)))
            .unwrap();
        for i in 0..m.grid().len() {
            assert_eq!(m.power(i), t.power(i));
            assert_eq!(m.perf(i), t.perf(i));
        }
    }
}
