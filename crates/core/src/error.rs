//! Error types for the power-mediation runtime.

use powermed_server::ServerError;

/// Errors raised by the mediation runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying server rejected an actuation.
    Server(ServerError),
    /// The referenced application has no measurement/calibration state.
    Uncalibrated(String),
    /// No feasible schedule exists under the cap (even temporal
    /// coordination with the available ESD cannot fit).
    Infeasible {
        /// The cap that could not be met, in watts.
        cap_w: f64,
        /// The minimum net draw achievable, in watts.
        floor_w: f64,
    },
    /// The policy was asked to plan with no applications hosted.
    NothingToPlan,
    /// A knob write for the named application kept failing past the
    /// hardened runtime's retry budget (event E5).
    ActuationFailed {
        /// The application whose knobs could not be written.
        app: String,
        /// Retry attempts made before giving up.
        attempts: u32,
    },
    /// The observed power telemetry degraded — consecutive sample
    /// dropouts or a stuck meter (event E6).
    TelemetryLoss {
        /// What the runtime saw, e.g. "5 consecutive dropouts".
        what: String,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Server(e) => write!(f, "server actuation failed: {e}"),
            Self::Uncalibrated(app) => write!(f, "no calibration state for {app:?}"),
            Self::Infeasible { cap_w, floor_w } => write!(
                f,
                "cap {cap_w} W below achievable floor {floor_w} W; no feasible schedule"
            ),
            Self::NothingToPlan => write!(f, "no applications to plan for"),
            Self::ActuationFailed { app, attempts } => write!(
                f,
                "knob actuation for {app:?} failed after {attempts} retries"
            ),
            Self::TelemetryLoss { what } => {
                write!(f, "power telemetry degraded: {what}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServerError> for CoreError {
    fn from(e: ServerError) -> Self {
        Self::Server(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(ServerError::UnknownApp("x".into()));
        assert!(e.to_string().contains("server actuation"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::Infeasible {
            cap_w: 40.0,
            floor_w: 50.0,
        };
        assert!(e.to_string().contains("40"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(CoreError::Uncalibrated("a".into())
            .to_string()
            .contains("a"));
        assert!(!CoreError::NothingToPlan.to_string().is_empty());
        let e = CoreError::ActuationFailed {
            app: "x264".into(),
            attempts: 3,
        };
        assert!(e.to_string().contains("x264"));
        assert!(e.to_string().contains("3"));
        let e = CoreError::TelemetryLoss {
            what: "5 consecutive dropouts".into(),
        };
        assert!(e.to_string().contains("dropouts"));
    }
}
