//! Error types for the power-mediation runtime.

use powermed_server::ServerError;

/// Errors raised by the mediation runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying server rejected an actuation.
    Server(ServerError),
    /// The referenced application has no measurement/calibration state.
    Uncalibrated(String),
    /// No feasible schedule exists under the cap (even temporal
    /// coordination with the available ESD cannot fit).
    Infeasible {
        /// The cap that could not be met, in watts.
        cap_w: f64,
        /// The minimum net draw achievable, in watts.
        floor_w: f64,
    },
    /// The policy was asked to plan with no applications hosted.
    NothingToPlan,
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Server(e) => write!(f, "server actuation failed: {e}"),
            Self::Uncalibrated(app) => write!(f, "no calibration state for {app:?}"),
            Self::Infeasible { cap_w, floor_w } => write!(
                f,
                "cap {cap_w} W below achievable floor {floor_w} W; no feasible schedule"
            ),
            Self::NothingToPlan => write!(f, "no applications to plan for"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServerError> for CoreError {
    fn from(e: ServerError) -> Self {
        Self::Server(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(ServerError::UnknownApp("x".into()));
        assert!(e.to_string().contains("server actuation"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::Infeasible {
            cap_w: 40.0,
            floor_w: 50.0,
        };
        assert!(e.to_string().contains("40"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(CoreError::Uncalibrated("a".into())
            .to_string()
            .contains("a"));
        assert!(!CoreError::NothingToPlan.to_string().is_empty());
    }
}
