//! The five evaluated power-management schemes (Sec. IV).
//!
//! | Scheme | App-level utilities | Resource-level utilities | ESD |
//! |---|---|---|---|
//! | `UtilUnaware` (baseline 1) | no — equal split | no — package-RAPL frequency throttling | no |
//! | `ServerResAware` (baseline 2) | no — equal split | server-averaged only | no |
//! | `AppAware` | yes — DP apportionment | no — frequency throttling within the share | no |
//! | `AppResAware` | yes | yes — full `(f, n, m)` grid per app | no |
//! | `AppResEsdAware` | yes | yes | yes — Eq. 5 consolidated cycling |

use powermed_server::ServerSpec;
use powermed_units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::allocator::{Allocation, PowerAllocator};
use crate::coordinator::{Coordinator, EsdParams, Schedule};
use crate::measurement::AppMeasurement;
use powermed_workloads::catalog;

/// Which of the five evaluated schemes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Fair power split, RAPL-style frequency enforcement (baseline 1).
    UtilUnaware,
    /// Fair split, knobs picked by server-averaged resource utilities
    /// (baseline 2).
    ServerResAware,
    /// Utility-aware apportionment across apps, frequency-only knobs.
    AppAware,
    /// Apportionment across apps *and* across each app's resources.
    AppResAware,
    /// `AppResAware` plus ESD-backed temporal coordination.
    AppResEsdAware,
}

impl PolicyKind {
    /// All five schemes in the paper's presentation order.
    pub fn all() -> [PolicyKind; 5] {
        [
            Self::UtilUnaware,
            Self::ServerResAware,
            Self::AppAware,
            Self::AppResAware,
            Self::AppResEsdAware,
        ]
    }

    /// The scheme's display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::UtilUnaware => "Util-Unaware",
            Self::ServerResAware => "Server+Res-Aware",
            Self::AppAware => "App-Aware",
            Self::AppResAware => "App+Res-Aware",
            Self::AppResEsdAware => "App+Res+ESD-Aware",
        }
    }

    /// Whether the scheme exploits energy storage.
    pub fn uses_esd(self) -> bool {
        matches!(self, Self::AppResEsdAware)
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A configured power policy: apportions the budget and produces a
/// [`Schedule`] for the coordinator's modes.
#[derive(Debug, Clone)]
pub struct PowerPolicy {
    kind: PolicyKind,
    spec: ServerSpec,
    allocator: PowerAllocator,
    coordinator: Coordinator,
    /// The catalog-averaged utility surface used by `ServerResAware`
    /// (computed only for that scheme).
    server_average: Option<AppMeasurement>,
}

impl PowerPolicy {
    /// Creates a policy of `kind` for the platform `spec`, with a 10 s
    /// nominal duty cycle.
    pub fn new(kind: PolicyKind, spec: ServerSpec) -> Self {
        let coordinator = Coordinator::new(
            spec.idle_power(),
            spec.chip_maintenance_power(),
            Seconds::new(10.0),
        )
        .with_core_capacity(spec.topology().total_cores());
        let server_average = matches!(kind, PolicyKind::ServerResAware | PolicyKind::AppAware)
            .then(|| {
                let all: Vec<AppMeasurement> = catalog::all()
                    .iter()
                    .map(|p| AppMeasurement::exhaustive(&spec, p))
                    .collect();
                AppMeasurement::server_average(&all)
            });
        Self {
            kind,
            spec,
            allocator: PowerAllocator::default(),
            coordinator,
            server_average,
        }
    }

    /// Overrides the nominal duty-cycle period used by temporal
    /// schedules (default 10 s).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn with_cycle_period(mut self, period: Seconds) -> Self {
        self.coordinator = Coordinator::new(
            self.spec.idle_power(),
            self.spec.chip_maintenance_power(),
            period,
        )
        .with_core_capacity(self.spec.topology().total_cores());
        self
    }

    /// The scheme this policy implements.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The knob family this scheme actuates for `app`.
    ///
    /// * `UtilUnaware` enforces budgets through RAPL's balanced
    ///   reduction of the frequency and DRAM domains with all cores
    ///   online — no utility knowledge at all.
    /// * `ServerResAware` and `AppAware` pick knobs from the
    ///   catalog-averaged utility surface: resource utilities are known
    ///   only *on average*, not per application (App-Aware adds
    ///   app-level budget apportionment on top).
    /// * The resource-aware schemes search the whole feasible
    ///   `(f, n, m)` grid per application.
    pub fn family(&self, app: &AppMeasurement) -> Vec<usize> {
        match self.kind {
            PolicyKind::UtilUnaware => app.balanced_family(&self.spec),
            PolicyKind::ServerResAware | PolicyKind::AppAware => self.average_family(),
            PolicyKind::AppResAware | PolicyKind::AppResEsdAware => app.feasible_indices(),
        }
    }

    /// The chain of settings the catalog-averaged surface prefers at
    /// each integer-watt budget.
    fn average_family(&self) -> Vec<usize> {
        let avg = self
            .server_average
            .as_ref()
            .expect("average-surface schemes carry the catalog average");
        let feasible = avg.feasible_indices();
        let max_budget = self.spec.rated_power().value().ceil() as usize;
        let mut chain: Vec<usize> = (0..=max_budget)
            .filter_map(|b| avg.best_within(Watts::new(b as f64), &feasible))
            .map(|(i, _)| i)
            .collect();
        chain.sort_unstable();
        chain.dedup();
        chain
    }

    /// Apportions the dynamic budget across `apps` the way this scheme
    /// would.
    pub fn apportion(&self, apps: &[(&str, &AppMeasurement)], budget: Watts) -> Allocation {
        let families: Vec<Vec<usize>> = apps.iter().map(|(_, m)| self.family(m)).collect();
        match self.kind {
            PolicyKind::UtilUnaware => {
                let ms: Vec<(&AppMeasurement, Option<&[usize]>)> = apps
                    .iter()
                    .zip(&families)
                    .map(|((_, m), f)| (*m, Some(f.as_slice())))
                    .collect();
                self.allocator.equal_split(&ms, budget)
            }
            PolicyKind::ServerResAware => self.server_res_aware(apps, budget),
            PolicyKind::AppAware | PolicyKind::AppResAware | PolicyKind::AppResEsdAware => {
                let ms: Vec<(&AppMeasurement, Option<&[usize]>)> = apps
                    .iter()
                    .zip(&families)
                    .map(|((_, m), f)| (*m, Some(f.as_slice())))
                    .collect();
                let total_cores = self.spec.topology().total_cores();
                if apps.len() * self.spec.max_app_cores() > total_cores {
                    // Three or more apps can overcommit the cores: run
                    // the joint (watts, cores) program.
                    self.allocator
                        .apportion_with_cores(&ms, budget, total_cores)
                } else {
                    self.allocator.apportion(&ms, budget)
                }
            }
        }
    }

    /// Baseline 2: equal budgets; one knob setting chosen from the
    /// server-level utility surface — resource utilities *averaged
    /// across all applications* the server has seen (the catalog), with
    /// no knowledge of the co-located apps' individual preferences — and
    /// applied to every app.
    fn server_res_aware(&self, apps: &[(&str, &AppMeasurement)], budget: Watts) -> Allocation {
        let avg = self
            .server_average
            .as_ref()
            .expect("ServerResAware policy carries the catalog average");
        let share = budget / apps.len() as f64;
        let choice = avg.best_within(share, &avg.feasible_indices());
        let mut settings = Vec::with_capacity(apps.len());
        let mut normalized = Vec::with_capacity(apps.len());
        let mut objective = 0.0;
        for (_, m) in apps {
            let s = choice.map(|(i, _)| i);
            settings.push(s);
            let p = s.map_or(0.0, |i| m.perf(i)) / m.nocap_perf().max(1e-12);
            normalized.push(p);
            objective += p;
        }
        Allocation {
            budgets: vec![share; apps.len()],
            settings,
            normalized_perf: normalized,
            objective,
        }
    }

    /// Plans the full schedule for `apps` under `p_cap`.
    ///
    /// `esd` is only consulted by ESD-aware schemes.
    pub fn plan(
        &self,
        apps: &[(&str, &AppMeasurement)],
        p_cap: Watts,
        esd: Option<EsdParams>,
    ) -> Schedule {
        if apps.is_empty() {
            return Schedule::Space {
                settings: Default::default(),
            };
        }
        let budget =
            (p_cap - self.spec.idle_power() - self.spec.chip_maintenance_power()).max_zero();
        let allocation = self.apportion(apps, budget);
        let families: Vec<Vec<usize>> = apps.iter().map(|(_, m)| self.family(m)).collect();
        let esd = if self.kind.uses_esd() { esd } else { None };
        self.coordinator
            .schedule(apps, &families, &allocation, p_cap, esd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_units::Ratio;
    use powermed_workloads::{catalog, mixes};

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn measure(p: powermed_workloads::AppProfile) -> AppMeasurement {
        AppMeasurement::exhaustive(&spec(), &p)
    }

    fn lead_acid() -> EsdParams {
        EsdParams {
            efficiency: Ratio::new(0.75),
            max_discharge: Watts::new(100.0),
            max_charge: Watts::new(50.0),
        }
    }

    #[test]
    fn names_and_esd_flags() {
        assert_eq!(PolicyKind::all().len(), 5);
        assert_eq!(PolicyKind::UtilUnaware.to_string(), "Util-Unaware");
        assert_eq!(PolicyKind::AppResEsdAware.name(), "App+Res+ESD-Aware");
        assert!(PolicyKind::AppResEsdAware.uses_esd());
        assert!(!PolicyKind::AppResAware.uses_esd());
    }

    #[test]
    fn families_match_scheme_capability() {
        let m = measure(catalog::stream());
        let spec = spec();
        let rapl = PowerPolicy::new(PolicyKind::UtilUnaware, spec.clone());
        let chain = rapl.family(&m);
        // The balanced RAPL chain is a small 1-D path through the
        // (f, m) plane with all cores online.
        assert!(
            chain.len() >= 5 && chain.len() <= 72,
            "chain {}",
            chain.len()
        );
        for idx in &chain {
            assert_eq!(m.grid().get(*idx).unwrap().cores(), 6);
        }
        let full = PowerPolicy::new(PolicyKind::AppResAware, spec);
        assert_eq!(full.family(&m).len(), 216);
    }

    #[test]
    fn policy_hierarchy_at_loose_cap() {
        // Fig. 8a's ordering: each added awareness level helps, averaged
        // across the Table II mixes at P_cap = 100 W.
        let spec = spec();
        let budget = Watts::new(30.0);
        let mut objs = std::collections::BTreeMap::new();
        for kind in [
            PolicyKind::UtilUnaware,
            PolicyKind::ServerResAware,
            PolicyKind::AppAware,
            PolicyKind::AppResAware,
        ] {
            let policy = PowerPolicy::new(kind, spec.clone());
            let mut total = 0.0;
            for mix in mixes::table2() {
                let a = measure(mix.app1.clone());
                let b = measure(mix.app2.clone());
                let apps = [(mix.app1.name(), &a), (mix.app2.name(), &b)];
                total += policy.apportion(&apps, budget).objective;
            }
            objs.insert(kind.name(), total / 15.0);
        }
        let uu = objs["Util-Unaware"];
        let aa = objs["App-Aware"];
        let ar = objs["App+Res-Aware"];
        assert!(aa >= uu - 1e-9, "App-Aware {aa} vs Util-Unaware {uu}");
        assert!(ar >= aa - 1e-9, "App+Res {ar} vs App-Aware {aa}");
        assert!(
            ar > uu * 1.05,
            "resource+app awareness should clearly beat the baseline: {ar} vs {uu}"
        );
    }

    #[test]
    fn app_res_beats_app_aware_on_memory_mixes() {
        // Mix-1 (STREAM + kmeans): the paper highlights that resource
        // awareness is what helps here, not app-level splitting.
        let spec = spec();
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let budget = Watts::new(30.0);
        let app_aware = PowerPolicy::new(PolicyKind::AppAware, spec.clone())
            .apportion(&apps, budget)
            .objective;
        let app_res = PowerPolicy::new(PolicyKind::AppResAware, spec)
            .apportion(&apps, budget)
            .objective;
        assert!(
            app_res > app_aware * 1.015,
            "App+Res {app_res} should beat App-Aware {app_aware} on mix-1"
        );
    }

    #[test]
    fn plan_modes_follow_cap() {
        let spec = spec();
        let a = measure(catalog::pagerank());
        let b = measure(catalog::kmeans());
        let apps = [("pagerank", &a), ("kmeans", &b)];
        let policy = PowerPolicy::new(PolicyKind::AppResAware, spec.clone());
        assert!(matches!(
            policy.plan(&apps, Watts::new(100.0), None),
            Schedule::Space { .. }
        ));
        assert!(matches!(
            policy.plan(&apps, Watts::new(80.0), None),
            Schedule::Alternate { .. }
        ));
        let esd_policy = PowerPolicy::new(PolicyKind::AppResEsdAware, spec);
        assert!(matches!(
            esd_policy.plan(&apps, Watts::new(80.0), Some(lead_acid())),
            Schedule::EsdCycle { .. }
        ));
        // Non-ESD schemes ignore the device even if present.
        let no_esd = PowerPolicy::new(PolicyKind::AppResAware, ServerSpec::xeon_e5_2620());
        assert!(matches!(
            no_esd.plan(&apps, Watts::new(80.0), Some(lead_acid())),
            Schedule::Alternate { .. }
        ));
    }

    #[test]
    fn empty_plan_is_trivial_space() {
        let policy = PowerPolicy::new(PolicyKind::AppResAware, spec());
        match policy.plan(&[], Watts::new(100.0), None) {
            Schedule::Space { settings } => assert!(settings.is_empty()),
            other => panic!("expected empty Space, got {other:?}"),
        }
    }

    #[test]
    fn server_res_aware_applies_one_setting_to_all() {
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let policy = PowerPolicy::new(PolicyKind::ServerResAware, spec());
        let alloc = policy.apportion(&apps, Watts::new(30.0));
        assert_eq!(alloc.settings[0], alloc.settings[1]);
        assert_eq!(alloc.budgets[0], alloc.budgets[1]);
    }
}
