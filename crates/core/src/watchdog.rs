//! Graceful-degradation machinery: the safe-mode watchdog and the
//! hardening configuration for a [`crate::runtime::PowerMediator`]
//! facing a faulty substrate.
//!
//! The watchdog is deliberately a tiny pure state machine — it consumes
//! one boolean per poll ("was the *observed* net draw over the cap?")
//! and decides when the mediator must stop trusting its plan and
//! force-throttle, and when a cleared breach lets normal operation
//! resume. Keeping it free of simulator references makes the
//! engage/release behaviour directly unit-testable.

use powermed_units::Seconds;

/// Tunables for the hardened mediator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningConfig {
    /// Bounded retries for a knob write that failed or did not land.
    pub max_retries: u32,
    /// Base sim-time backoff between retries (attempt `k` waits
    /// `k × retry_backoff`).
    pub retry_backoff: Seconds,
    /// Consecutive over-cap observed polls before safe mode engages.
    pub watchdog_patience: u32,
    /// Consecutive under-cap observed polls before safe mode releases.
    pub watchdog_release: u32,
    /// Consecutive sample dropouts before an E6 sensor fault fires.
    pub dropout_patience: u32,
    /// Dropout polls over which the mediator keeps feeding the *last
    /// good* meter reading to the watchdog before going blind. Must be
    /// below `dropout_patience`: holding bridges brief sensor gaps so a
    /// breach in progress keeps arming the watchdog, while a sustained
    /// outage still escalates to E6 on schedule.
    pub dropout_hold_polls: u32,
    /// Consecutive bit-identical observed readings (while the internal
    /// RAPL-side reading moves) before an E6 sensor fault fires.
    pub stuck_patience: u32,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            retry_backoff: Seconds::new(0.2),
            watchdog_patience: 5,
            watchdog_release: 10,
            dropout_patience: 5,
            dropout_hold_polls: 3,
            stuck_patience: 10,
        }
    }
}

/// A watchdog state change reported by [`SafeModeWatchdog::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogTransition {
    /// The breach persisted: force-throttle now.
    Engaged,
    /// The breach cleared: normal operation may resume.
    Released,
}

/// Debounced over-cap breach detector.
///
/// Engages after `patience` *consecutive* over-cap polls and releases
/// after `release` consecutive under-cap polls; any opposite poll resets
/// the respective counter, so isolated spikes (or isolated clean
/// readings from a noisy meter) do not flap the mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafeModeWatchdog {
    patience: u32,
    release: u32,
    over: u32,
    under: u32,
    engaged: bool,
}

impl SafeModeWatchdog {
    /// Creates a watchdog that engages after `patience` over-cap polls
    /// and releases after `release` under-cap polls.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(patience: u32, release: u32) -> Self {
        assert!(patience >= 1, "watchdog patience must be at least one");
        assert!(release >= 1, "watchdog release must be at least one");
        Self {
            patience,
            release,
            over: 0,
            under: 0,
            engaged: false,
        }
    }

    /// Whether safe mode is currently engaged.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Engages immediately, bypassing the debounce. Used when an
    /// external escalation source (the estimation ladder) has already
    /// accumulated its own evidence; returns `None` when already
    /// engaged so callers do not double-count the transition.
    pub fn force_engage(&mut self) -> Option<WatchdogTransition> {
        if self.engaged {
            return None;
        }
        self.engaged = true;
        self.over = 0;
        self.under = 0;
        Some(WatchdogTransition::Engaged)
    }

    /// Feeds one poll; returns a transition when the mode flips.
    pub fn observe(&mut self, over_cap: bool) -> Option<WatchdogTransition> {
        if over_cap {
            self.over += 1;
            self.under = 0;
        } else {
            self.under += 1;
            self.over = 0;
        }
        if !self.engaged && self.over >= self.patience {
            self.engaged = true;
            self.over = 0;
            return Some(WatchdogTransition::Engaged);
        }
        if self.engaged && self.under >= self.release {
            self.engaged = false;
            self.under = 0;
            return Some(WatchdogTransition::Released);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engages_after_patience_consecutive_overs() {
        let mut w = SafeModeWatchdog::new(3, 2);
        assert_eq!(w.observe(true), None);
        assert_eq!(w.observe(true), None);
        assert!(!w.engaged());
        assert_eq!(w.observe(true), Some(WatchdogTransition::Engaged));
        assert!(w.engaged());
    }

    #[test]
    fn isolated_spikes_do_not_engage() {
        let mut w = SafeModeWatchdog::new(3, 2);
        for _ in 0..10 {
            assert_eq!(w.observe(true), None);
            assert_eq!(w.observe(true), None);
            assert_eq!(w.observe(false), None, "clean poll resets the count");
        }
        assert!(!w.engaged());
    }

    #[test]
    fn releases_after_breach_clears() {
        let mut w = SafeModeWatchdog::new(2, 3);
        w.observe(true);
        assert_eq!(w.observe(true), Some(WatchdogTransition::Engaged));
        // Still over cap: stays engaged.
        assert_eq!(w.observe(true), None);
        assert!(w.engaged());
        // The breach clears; release needs three consecutive clean polls.
        assert_eq!(w.observe(false), None);
        assert_eq!(w.observe(false), None);
        assert_eq!(w.observe(false), Some(WatchdogTransition::Released));
        assert!(!w.engaged());
    }

    #[test]
    fn release_count_resets_on_renewed_breach() {
        let mut w = SafeModeWatchdog::new(1, 3);
        assert_eq!(w.observe(true), Some(WatchdogTransition::Engaged));
        w.observe(false);
        w.observe(false);
        assert_eq!(w.observe(true), None, "breach renews, release resets");
        w.observe(false);
        w.observe(false);
        assert_eq!(w.observe(false), Some(WatchdogTransition::Released));
    }

    #[test]
    fn can_reengage_after_release() {
        let mut w = SafeModeWatchdog::new(2, 1);
        w.observe(true);
        assert_eq!(w.observe(true), Some(WatchdogTransition::Engaged));
        assert_eq!(w.observe(false), Some(WatchdogTransition::Released));
        w.observe(true);
        assert_eq!(w.observe(true), Some(WatchdogTransition::Engaged));
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn zero_patience_rejected() {
        let _ = SafeModeWatchdog::new(0, 1);
    }

    #[test]
    fn default_config_is_sane() {
        let c = HardeningConfig::default();
        assert!(c.max_retries >= 1);
        assert!(c.retry_backoff.value() > 0.0);
        assert!(c.watchdog_release >= c.watchdog_patience);
        assert!(
            c.dropout_hold_polls < c.dropout_patience,
            "holding must not outlast the dropout E6 deadline"
        );
    }

    #[test]
    fn force_engage_bypasses_debounce_and_releases_normally() {
        let mut w = SafeModeWatchdog::new(5, 2);
        assert_eq!(w.force_engage(), Some(WatchdogTransition::Engaged));
        assert!(w.engaged());
        assert_eq!(w.force_engage(), None, "already engaged");
        assert_eq!(w.observe(false), None);
        assert_eq!(w.observe(false), Some(WatchdogTransition::Released));
    }
}
