//! Integration tests for the shared [`MeasurementCache`].
//!
//! These live in their own test binary so the process-wide
//! [`evaluation_count`] counter only sees this file's activity; within
//! the file a serializing mutex keeps the counting test from racing
//! the concurrent-reader test.

use std::sync::{Arc, Mutex};

use powermed_core::cache::MeasurementCache;
use powermed_core::measurement::AppMeasurement;
use powermed_server::ServerSpec;
use powermed_workloads::catalog;
use powermed_workloads::profile::evaluation_count;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn cache_hit_skips_re_evaluation() {
    let _guard = SERIAL.lock().unwrap();
    let cache = MeasurementCache::new();
    let spec = ServerSpec::xeon_e5_2620();
    let profile = catalog::x264();

    let before = evaluation_count();
    let first = cache.measure(&spec, &profile);
    let after_build = evaluation_count();
    assert!(
        after_build - before >= first.grid().len() as u64,
        "building the surface must evaluate the whole grid ({} settings), saw {}",
        first.grid().len(),
        after_build - before
    );

    let second = cache.measure(&spec, &profile);
    assert_eq!(
        evaluation_count(),
        after_build,
        "a cache hit must not re-evaluate the profile"
    );
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
}

#[test]
fn concurrent_readers_share_one_surface() {
    let _guard = SERIAL.lock().unwrap();
    let cache = MeasurementCache::new();
    let spec = ServerSpec::xeon_e5_2620();
    let profile = catalog::pagerank();

    let surfaces: Vec<Arc<AppMeasurement>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| cache.measure(&spec, &profile)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Racing misses may each build a surface, but the first insert wins
    // and everyone must receive that stored Arc.
    for s in &surfaces {
        assert!(
            Arc::ptr_eq(s, &surfaces[0]),
            "readers saw different surfaces"
        );
    }
    assert_eq!(cache.len(), 1);
    assert_eq!(
        cache.hits() + cache.misses(),
        surfaces.len() as u64,
        "every lookup is either a hit or a miss"
    );
}

#[test]
fn cached_surface_matches_direct_exhaustive() {
    let _guard = SERIAL.lock().unwrap();
    let cache = MeasurementCache::new();
    let spec = ServerSpec::xeon_e5_2620();
    let profile = catalog::kmeans();

    let cached = cache.measure(&spec, &profile);
    let direct = AppMeasurement::exhaustive(&spec, &profile);
    assert_eq!(cached.grid().len(), direct.grid().len());
    for idx in 0..direct.grid().len() {
        assert_eq!(cached.power(idx).value(), direct.power(idx).value());
        assert_eq!(cached.perf(idx), direct.perf(idx));
    }
}
