//! Socket sleep states (package C-states).
//!
//! The paper's temporal-coordination schemes (R3b, R4) put whole sockets
//! into the PC6 deep-sleep state during OFF periods, which removes the
//! chip-maintenance power `P_cm` while keeping `P_idle` (the server itself
//! stays on). Wake-up latencies are in the hundreds of microseconds
//! (Schöne et al. [47]), so duty-cycling at second granularity costs
//! essentially nothing in transition overhead — but we model it anyway so
//! that pathological high-frequency cycling would be penalized.

use powermed_units::Seconds;
use serde::{Deserialize, Serialize};

/// Power state of one socket (package).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SocketPowerState {
    /// Package active: uncore powered, cores runnable.
    #[default]
    Active,
    /// Package C6 deep sleep: uncore power-gated, core state flushed.
    DeepSleep,
}

impl SocketPowerState {
    /// Whether the socket contributes uncore (`P_cm`) power.
    pub fn draws_uncore_power(self) -> bool {
        matches!(self, Self::Active)
    }
}

impl core::fmt::Display for SocketPowerState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Active => write!(f, "active"),
            Self::DeepSleep => write!(f, "PC6"),
        }
    }
}

/// Transition-latency model for socket sleep states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepLatency {
    /// Time to enter PC6 once the last core halts.
    pub enter: Seconds,
    /// Time from wake signal until cores can retire instructions.
    pub exit: Seconds,
}

impl SleepLatency {
    /// Latencies measured on Sandy-Bridge-class Xeons: entering PC6 takes
    /// tens of microseconds, exiting on the order of 100 µs.
    pub fn xeon_pc6() -> Self {
        Self {
            enter: Seconds::from_micros(40.0),
            exit: Seconds::from_micros(120.0),
        }
    }

    /// Total time lost to one full sleep/wake round trip.
    pub fn round_trip(&self) -> Seconds {
        self.enter + self.exit
    }

    /// Fraction of useful time lost when duty-cycling with the given ON
    /// period: `round_trip / on_period`, clamped to 1.
    pub fn cycling_overhead(&self, on_period: Seconds) -> f64 {
        if on_period.value() <= 0.0 {
            return 1.0;
        }
        (self.round_trip() / on_period).min(1.0)
    }
}

impl Default for SleepLatency {
    fn default() -> Self {
        Self::xeon_pc6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncore_power_follows_state() {
        assert!(SocketPowerState::Active.draws_uncore_power());
        assert!(!SocketPowerState::DeepSleep.draws_uncore_power());
        assert_eq!(SocketPowerState::default(), SocketPowerState::Active);
    }

    #[test]
    fn second_scale_duty_cycling_is_cheap() {
        let lat = SleepLatency::xeon_pc6();
        // ON periods of 4 s (the paper's Fig. 5 scale): < 0.01% overhead.
        assert!(lat.cycling_overhead(Seconds::new(4.0)) < 1e-4);
    }

    #[test]
    fn microsecond_cycling_is_penalized() {
        let lat = SleepLatency::xeon_pc6();
        assert!(lat.cycling_overhead(Seconds::from_micros(200.0)) > 0.5);
        assert_eq!(lat.cycling_overhead(Seconds::ZERO), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(SocketPowerState::Active.to_string(), "active");
        assert_eq!(SocketPowerState::DeepSleep.to_string(), "PC6");
    }
}
