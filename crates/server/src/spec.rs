//! Server hardware specification (the paper's Table I).

use powermed_units::{BytesPerSec, Gigahertz, Watts};
use serde::{Deserialize, Serialize};

use crate::dvfs::FrequencyLadder;
use crate::knobs::KnobGrid;
use crate::power::{CorePowerModel, DramPowerModel};
use crate::topology::Topology;

/// Static description of a server platform: topology, DVFS ladder,
/// power-model constants and RAPL-controllable ranges.
///
/// The default construction [`ServerSpec::xeon_e5_2620`] reproduces the
/// paper's Table I:
///
/// | Parameter     | Value        |
/// |---------------|--------------|
/// | Cores         | 12 (2 × 6)   |
/// | Frequency     | 1.2–2 GHz    |
/// | Freq. steps   | 9            |
/// | NUMA          | 2 nodes      |
/// | `P_idle`      | 50 W         |
/// | `P_cm`        | 20 W         |
/// | `P_dynamic`   | ≤ 60 W       |
/// | DRAM RAPL     | 3–10 W/DIMM  |
///
/// # Examples
///
/// ```
/// use powermed_server::spec::ServerSpec;
/// use powermed_units::Watts;
///
/// let spec = ServerSpec::xeon_e5_2620();
/// assert_eq!(spec.idle_power(), Watts::new(50.0));
/// assert_eq!(spec.topology().total_cores(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    topology: Topology,
    ladder: FrequencyLadder,
    idle_power: Watts,
    chip_maintenance_power: Watts,
    core_power: CorePowerModel,
    dram_power: DramPowerModel,
    max_app_cores: usize,
    dram_limit_min: Watts,
    dram_limit_max: Watts,
}

impl ServerSpec {
    /// The paper's evaluation platform: a dual-socket Xeon E5-2620.
    ///
    /// Power-model constants are calibrated so that 12 cores at 2 GHz plus
    /// both DIMMs at their 10 W limits draw the Table I maximum of 60 W of
    /// dynamic power, and so that one 6-core application at 2 GHz draws the
    /// ~20 W of dynamic power used in the paper's running example
    /// (Sec. II-A).
    pub fn xeon_e5_2620() -> Self {
        Self {
            topology: Topology::new(2, 6, 2),
            ladder: FrequencyLadder::new(Gigahertz::new(1.2), Gigahertz::new(2.0), 9)
                .expect("paper ladder is valid"),
            idle_power: Watts::new(50.0),
            chip_maintenance_power: Watts::new(20.0),
            core_power: CorePowerModel::xeon_e5_2620(),
            dram_power: DramPowerModel::ddr3_dimm(),
            max_app_cores: 6,
            dram_limit_min: Watts::new(3.0),
            dram_limit_max: Watts::new(10.0),
        }
    }

    /// An edge/micro-server SKU: one low-power socket pair, a narrow
    /// 1.0–1.6 GHz ladder and a very low static floor. Its rated power
    /// (~67 W) is barely half the Xeon's, but so is its dynamic range —
    /// the cap ladder a manager can usefully assign it is short, which
    /// is exactly what makes SKU-aware apportionment matter.
    pub fn edge_low_idle() -> Self {
        Self {
            topology: Topology::new(2, 4, 2),
            ladder: FrequencyLadder::new(Gigahertz::new(1.0), Gigahertz::new(1.6), 5)
                .expect("edge ladder is valid"),
            idle_power: Watts::new(25.0),
            chip_maintenance_power: Watts::new(10.0),
            // Same process/core family as the Xeon, binned lower.
            core_power: CorePowerModel::xeon_e5_2620(),
            dram_power: DramPowerModel::ddr3_dimm(),
            max_app_cores: 4,
            dram_limit_min: Watts::new(3.0),
            dram_limit_max: Watts::new(8.0),
        }
    }

    /// A throughput SKU: many cores, a tall 1.2–2.6 GHz ladder, and a
    /// steeper cubic frequency-power term. Most of its rated power
    /// (~191 W) is *dynamic*, so budget placed here converts to
    /// throughput far better than on the Xeon — but only while the cap
    /// leaves headroom above its 80 W static floor.
    pub fn throughput_highdyn() -> Self {
        Self {
            topology: Topology::new(2, 8, 2),
            ladder: FrequencyLadder::new(Gigahertz::new(1.2), Gigahertz::new(2.6), 8)
                .expect("throughput ladder is valid"),
            idle_power: Watts::new(55.0),
            chip_maintenance_power: Watts::new(25.0),
            core_power: CorePowerModel::new(
                Watts::new(0.05),
                1.1,
                0.16,
                powermed_units::Ratio::new(0.4),
            ),
            dram_power: DramPowerModel::ddr3_dimm(),
            max_app_cores: 8,
            dram_limit_min: Watts::new(3.0),
            dram_limit_max: Watts::new(10.0),
        }
    }

    /// Builder-style override of the idle power.
    pub fn with_idle_power(mut self, idle: Watts) -> Self {
        self.idle_power = idle;
        self
    }

    /// Builder-style override of the chip-maintenance (uncore) power.
    pub fn with_chip_maintenance_power(mut self, cm: Watts) -> Self {
        self.chip_maintenance_power = cm;
        self
    }

    /// Builder-style override of the maximum cores one application may use.
    pub fn with_max_app_cores(mut self, n: usize) -> Self {
        self.max_app_cores = n;
        self
    }

    /// The socket/core/DIMM layout.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The DVFS frequency ladder shared by all cores.
    pub fn ladder(&self) -> &FrequencyLadder {
        &self.ladder
    }

    /// Baseline power drawn even with every socket asleep
    /// (fans, disks, LLC leakage, DRAM self-refresh): `P_idle`.
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Uncore power incurred once any socket is awake (LLC, on-chip
    /// network, memory controller, QPI): `P_cm`.
    pub fn chip_maintenance_power(&self) -> Watts {
        self.chip_maintenance_power
    }

    /// The per-core dynamic power model.
    pub fn core_power(&self) -> &CorePowerModel {
        &self.core_power
    }

    /// The DRAM power/bandwidth model (per DIMM).
    pub fn dram_power(&self) -> &DramPowerModel {
        &self.dram_power
    }

    /// Maximum cores one application may be allocated (`n_max`).
    pub fn max_app_cores(&self) -> usize {
        self.max_app_cores
    }

    /// Lowest settable per-DIMM DRAM RAPL limit (`m_min`).
    pub fn dram_limit_min(&self) -> Watts {
        self.dram_limit_min
    }

    /// Highest settable per-DIMM DRAM RAPL limit (`m_max`).
    pub fn dram_limit_max(&self) -> Watts {
        self.dram_limit_max
    }

    /// Number of integer-watt DRAM RAPL levels (`m_min..=m_max`, 1 W steps).
    pub fn dram_levels(&self) -> usize {
        (self.dram_limit_max.value() - self.dram_limit_min.value()).round() as usize + 1
    }

    /// Peak memory bandwidth of one DIMM at its maximum RAPL limit.
    pub fn peak_dimm_bandwidth(&self) -> BytesPerSec {
        self.dram_power.bandwidth_at_limit(self.dram_limit_max)
    }

    /// The full `(f, n, m)` knob grid for one application on this platform.
    ///
    /// For the paper's platform this is 9 × 6 × 8 = 432 settings.
    pub fn knob_grid(&self) -> KnobGrid {
        KnobGrid::new(self)
    }

    /// Maximum dynamic power one application can draw: all of its cores at
    /// top frequency plus one DIMM at the maximum RAPL limit.
    ///
    /// (Each application is pinned to one NUMA node and its local DIMM, as
    /// in the paper's Fig. 1.)
    pub fn max_app_dynamic_power(&self) -> Watts {
        let top = self.ladder.max_frequency();
        self.core_power.active_power(top) * self.max_app_cores as f64 + self.dram_limit_max
    }

    /// Maximum dynamic power of the whole server (`P_dynamic` in Table I).
    pub fn max_dynamic_power(&self) -> Watts {
        let top = self.ladder.max_frequency();
        self.core_power.active_power(top) * self.topology.total_cores() as f64
            + self.dram_limit_max * self.topology.total_dimms() as f64
    }

    /// Rated (nameplate) server power: idle + uncore + max dynamic.
    pub fn rated_power(&self) -> Watts {
        self.idle_power + self.chip_maintenance_power + self.max_dynamic_power()
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self::xeon_e5_2620()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_constants() {
        let spec = ServerSpec::xeon_e5_2620();
        assert_eq!(spec.idle_power(), Watts::new(50.0));
        assert_eq!(spec.chip_maintenance_power(), Watts::new(20.0));
        assert_eq!(spec.topology().total_cores(), 12);
        assert_eq!(spec.topology().sockets(), 2);
        assert_eq!(spec.ladder().steps(), 9);
        assert_eq!(spec.dram_levels(), 8);
        assert_eq!(spec.max_app_cores(), 6);
    }

    #[test]
    fn sku_catalog_spans_the_fleet_design_space() {
        let edge = ServerSpec::edge_low_idle();
        let xeon = ServerSpec::xeon_e5_2620();
        let big = ServerSpec::throughput_highdyn();
        // Static floors and rated powers are strictly ordered.
        assert!(edge.idle_power() < xeon.idle_power());
        assert!(xeon.idle_power() < big.idle_power());
        assert!(edge.rated_power() < xeon.rated_power());
        assert!(xeon.rated_power() < big.rated_power());
        // The throughput SKU is dynamic-dominated; the edge SKU's
        // dynamic range is the narrowest in absolute terms.
        assert!(big.max_dynamic_power().value() / big.rated_power().value() > 0.5);
        assert!(edge.max_dynamic_power() < xeon.max_dynamic_power());
        // Ladder shapes differ, and every SKU yields a usable grid.
        assert!(edge.ladder().max_frequency() < xeon.ladder().max_frequency());
        assert!(big.ladder().max_frequency() > xeon.ladder().max_frequency());
        for spec in [&edge, &xeon, &big] {
            assert!(!spec.knob_grid().is_empty(), "empty knob grid");
        }
    }

    #[test]
    fn dynamic_power_close_to_table_one() {
        let spec = ServerSpec::xeon_e5_2620();
        let p = spec.max_dynamic_power().value();
        // Table I reports P_dynamic = 60 W; our calibration lands a few
        // watts below because it also matches the 10 W per-app floor and
        // the ~20 W per-app peak of Secs. II-A/IV-B, which pin the core
        // power law more tightly.
        assert!((50.0..62.0).contains(&p), "max dynamic power was {p} W");
    }

    #[test]
    fn app_dynamic_power_matches_running_example() {
        let spec = ServerSpec::xeon_e5_2620();
        // Sec. II-A: one compute-heavy application at full tilt draws
        // ~20 W of dynamic power in its cores.
        let core_p = (spec
            .core_power()
            .active_power(spec.ladder().max_frequency())
            * 6.0)
            .value();
        assert!(
            (core_p - 17.0).abs() < 1.0,
            "6-core peak power was {core_p} W"
        );
        // With DRAM traffic on top this is the ~20 W dynamic draw of the
        // Sec. II-A running example; with the DIMM at its 10 W RAPL
        // ceiling the hard upper bound is ~27 W.
        let p = spec.max_app_dynamic_power().value();
        assert!((p - 26.7).abs() < 1.0, "max app dynamic power was {p} W");
    }

    #[test]
    fn builder_overrides() {
        let spec = ServerSpec::xeon_e5_2620()
            .with_idle_power(Watts::new(40.0))
            .with_chip_maintenance_power(Watts::new(15.0))
            .with_max_app_cores(4);
        assert_eq!(spec.idle_power(), Watts::new(40.0));
        assert_eq!(spec.chip_maintenance_power(), Watts::new(15.0));
        assert_eq!(spec.max_app_cores(), 4);
    }

    #[test]
    fn rated_power_is_sum_of_parts() {
        let spec = ServerSpec::xeon_e5_2620();
        let rated = spec.rated_power();
        assert_eq!(
            rated,
            spec.idle_power() + spec.chip_maintenance_power() + spec.max_dynamic_power()
        );
        // Idle 50 + uncore 20 + max dynamic ≈ 54 W.
        assert!((rated.value() - 123.5).abs() < 2.0);
    }

    #[test]
    fn clone_preserves_spec() {
        let spec = ServerSpec::xeon_e5_2620();
        assert_eq!(spec.clone(), spec);
    }
}
