//! The per-application power-allocation knob space `(f, n, m)`.
//!
//! The paper manages each application's power through three fine-grain
//! knobs (Sec. II-B):
//!
//! * `f` — DVFS state of the application's cores (9 steps, 1.2–2.0 GHz);
//! * `n` — number of un-gated cores (1–6);
//! * `m` — DRAM RAPL limit on the application's local DIMM (3–10 W, 1 W
//!   steps).
//!
//! [`KnobSetting`] is one point of that space; [`KnobGrid`] enumerates the
//! full 9 × 6 × 8 = 432-point grid that the collaborative-filtering
//! utility matrix is indexed by.

use powermed_units::{Gigahertz, Watts};
use serde::{Deserialize, Serialize};

use crate::dvfs::DvfsState;
use crate::error::ServerError;
use crate::spec::ServerSpec;

/// One assignment of the `(f, n, m)` knobs for a single application.
///
/// ```
/// use powermed_server::knobs::KnobSetting;
/// use powermed_server::dvfs::DvfsState;
/// use powermed_units::Watts;
///
/// let knob = KnobSetting::new(DvfsState::new(8), 6, Watts::new(10.0));
/// assert_eq!(knob.cores(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobSetting {
    dvfs: DvfsState,
    cores: usize,
    dram_limit: Watts,
}

impl KnobSetting {
    /// Creates a knob setting (unvalidated; use
    /// [`KnobSetting::validated`] to check against a platform).
    pub const fn new(dvfs: DvfsState, cores: usize, dram_limit: Watts) -> Self {
        Self {
            dvfs,
            cores,
            dram_limit,
        }
    }

    /// Creates a knob setting validated against `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServerError`] naming the offending knob when the DVFS
    /// state, core count or DRAM limit is outside the platform's range.
    pub fn validated(
        spec: &ServerSpec,
        dvfs: DvfsState,
        cores: usize,
        dram_limit: Watts,
    ) -> Result<Self, ServerError> {
        if dvfs.index() >= spec.ladder().steps() {
            return Err(ServerError::FrequencyOutOfRange {
                requested_ghz: f64::NAN,
                min_ghz: spec.ladder().min_frequency().value(),
                max_ghz: spec.ladder().max_frequency().value(),
            });
        }
        if cores == 0 || cores > spec.max_app_cores() {
            return Err(ServerError::CoreCountOutOfRange {
                requested: cores,
                max: spec.max_app_cores(),
            });
        }
        if dram_limit < spec.dram_limit_min() || dram_limit > spec.dram_limit_max() {
            return Err(ServerError::DramPowerOutOfRange {
                requested_w: dram_limit.value(),
                min_w: spec.dram_limit_min().value(),
                max_w: spec.dram_limit_max().value(),
            });
        }
        Ok(Self::new(dvfs, cores, dram_limit))
    }

    /// The maximal setting on `spec`: top frequency, all allowed cores,
    /// highest DRAM limit. This is the "uncapped" operating point.
    pub fn max_for(spec: &ServerSpec) -> Self {
        Self::new(
            spec.ladder().top_state(),
            spec.max_app_cores(),
            spec.dram_limit_max(),
        )
    }

    /// The minimal setting on `spec`: bottom frequency, one core, lowest
    /// DRAM limit — the least power an application can run with.
    pub fn min_for(spec: &ServerSpec) -> Self {
        Self::new(spec.ladder().bottom_state(), 1, spec.dram_limit_min())
    }

    /// The DVFS state (`f` knob).
    pub fn dvfs(self) -> DvfsState {
        self.dvfs
    }

    /// The frequency of the DVFS state on `spec`'s ladder.
    pub fn frequency(self, spec: &ServerSpec) -> Gigahertz {
        spec.ladder().frequency(self.dvfs)
    }

    /// The number of un-gated cores (`n` knob).
    pub fn cores(self) -> usize {
        self.cores
    }

    /// The DRAM RAPL limit on the app's local DIMM (`m` knob).
    pub fn dram_limit(self) -> Watts {
        self.dram_limit
    }

    /// Returns a copy with a different DVFS state.
    pub fn with_dvfs(mut self, dvfs: DvfsState) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Returns a copy with a different core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Returns a copy with a different DRAM limit.
    pub fn with_dram_limit(mut self, dram_limit: Watts) -> Self {
        self.dram_limit = dram_limit;
        self
    }
}

impl core::fmt::Display for KnobSetting {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "(f={}, n={}, m={:.0})",
            self.dvfs, self.cores, self.dram_limit
        )
    }
}

/// The full `(f, n, m)` grid for one application on a platform, in a
/// stable enumeration order (DVFS-major, then cores, then DRAM watts).
///
/// The stable order matters: the collaborative-filtering utility matrix
/// uses the grid index as its column key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobGrid {
    settings: Vec<KnobSetting>,
    dvfs_steps: usize,
    core_options: usize,
    dram_levels: usize,
}

impl KnobGrid {
    /// Builds the grid for `spec`.
    pub fn new(spec: &ServerSpec) -> Self {
        let dvfs_steps = spec.ladder().steps();
        let core_options = spec.max_app_cores();
        let dram_levels = spec.dram_levels();
        let mut settings = Vec::with_capacity(dvfs_steps * core_options * dram_levels);
        for f in spec.ladder().states() {
            for n in 1..=core_options {
                for level in 0..dram_levels {
                    let m = spec.dram_limit_min() + Watts::new(level as f64);
                    settings.push(KnobSetting::new(f, n, m));
                }
            }
        }
        Self {
            settings,
            dvfs_steps,
            core_options,
            dram_levels,
        }
    }

    /// Number of settings on the grid.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// Whether the grid is empty (never true for a valid platform).
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }

    /// The setting at grid index `idx`.
    pub fn get(&self, idx: usize) -> Option<KnobSetting> {
        self.settings.get(idx).copied()
    }

    /// The grid index of `setting`, if it lies on the grid.
    pub fn index_of(&self, setting: KnobSetting) -> Option<usize> {
        let f = setting.dvfs().index();
        if f >= self.dvfs_steps {
            return None;
        }
        let n = setting.cores();
        if n == 0 || n > self.core_options {
            return None;
        }
        let m0 = self.settings[0].dram_limit().value();
        let level = setting.dram_limit().value() - m0;
        if level < 0.0 || level.fract().abs() > 1e-9 {
            return None;
        }
        let level = level.round() as usize;
        if level >= self.dram_levels {
            return None;
        }
        Some((f * self.core_options + (n - 1)) * self.dram_levels + level)
    }

    /// Iterates over every setting in grid order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = KnobSetting> + '_ {
        self.settings.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn grid_size_matches_paper() {
        let grid = spec().knob_grid();
        assert_eq!(grid.len(), 432);
        assert!(!grid.is_empty());
    }

    #[test]
    fn grid_index_roundtrip() {
        let grid = spec().knob_grid();
        for (idx, setting) in grid.iter().enumerate() {
            assert_eq!(grid.index_of(setting), Some(idx));
            assert_eq!(grid.get(idx), Some(setting));
        }
        assert_eq!(grid.get(grid.len()), None);
    }

    #[test]
    fn index_of_rejects_off_grid_settings() {
        let grid = spec().knob_grid();
        // Fractional DRAM watts are off-grid.
        let s = KnobSetting::new(DvfsState::new(0), 1, Watts::new(3.5));
        assert_eq!(grid.index_of(s), None);
        // Core count beyond the per-app max.
        let s = KnobSetting::new(DvfsState::new(0), 7, Watts::new(3.0));
        assert_eq!(grid.index_of(s), None);
        // DVFS state beyond the ladder.
        let s = KnobSetting::new(DvfsState::new(9), 1, Watts::new(3.0));
        assert_eq!(grid.index_of(s), None);
        // DRAM level beyond the top.
        let s = KnobSetting::new(DvfsState::new(0), 1, Watts::new(11.0));
        assert_eq!(grid.index_of(s), None);
    }

    #[test]
    fn validation_catches_each_knob() {
        let spec = spec();
        assert!(KnobSetting::validated(&spec, DvfsState::new(20), 1, Watts::new(3.0)).is_err());
        assert!(KnobSetting::validated(&spec, DvfsState::new(0), 0, Watts::new(3.0)).is_err());
        assert!(KnobSetting::validated(&spec, DvfsState::new(0), 7, Watts::new(3.0)).is_err());
        assert!(KnobSetting::validated(&spec, DvfsState::new(0), 1, Watts::new(2.0)).is_err());
        assert!(KnobSetting::validated(&spec, DvfsState::new(0), 1, Watts::new(11.0)).is_err());
        assert!(KnobSetting::validated(&spec, DvfsState::new(8), 6, Watts::new(10.0)).is_ok());
    }

    #[test]
    fn min_max_settings() {
        let spec = spec();
        let max = KnobSetting::max_for(&spec);
        assert_eq!(max.cores(), 6);
        assert_eq!(max.dram_limit(), Watts::new(10.0));
        assert_eq!(max.frequency(&spec), spec.ladder().max_frequency());
        let min = KnobSetting::min_for(&spec);
        assert_eq!(min.cores(), 1);
        assert_eq!(min.dram_limit(), Watts::new(3.0));
        assert_eq!(min.frequency(&spec), spec.ladder().min_frequency());
    }

    #[test]
    fn with_builders() {
        let spec = spec();
        let s = KnobSetting::max_for(&spec)
            .with_cores(3)
            .with_dram_limit(Watts::new(5.0))
            .with_dvfs(DvfsState::new(2));
        assert_eq!(s.cores(), 3);
        assert_eq!(s.dram_limit(), Watts::new(5.0));
        assert_eq!(s.dvfs(), DvfsState::new(2));
        assert_eq!(s.to_string(), "(f=P2, n=3, m=5 W)");
    }
}
