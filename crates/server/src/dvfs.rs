//! Per-core dynamic voltage and frequency scaling (DVFS).
//!
//! The platform exposes a discrete frequency ladder (the paper's server
//! supports 1.2–2.0 GHz in 9 steps of 100 MHz). Policies address frequency
//! by [`DvfsState`] (an index into the ladder), which keeps the set of
//! settable frequencies closed under the policies' search.

use powermed_units::Gigahertz;
use serde::{Deserialize, Serialize};

use crate::error::ServerError;

/// An index into a [`FrequencyLadder`]: `DvfsState(0)` is the slowest
/// state, `DvfsState(steps - 1)` the fastest.
///
/// ```
/// use powermed_server::dvfs::{DvfsState, FrequencyLadder};
/// use powermed_units::Gigahertz;
///
/// let ladder = FrequencyLadder::paper_default();
/// assert_eq!(ladder.frequency(DvfsState::new(0)), Gigahertz::new(1.2));
/// assert_eq!(ladder.frequency(ladder.top_state()), Gigahertz::new(2.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DvfsState(usize);

impl DvfsState {
    /// Creates a DVFS state with the given ladder index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The ladder index of this state.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The next-slower state, if any.
    pub fn step_down(self) -> Option<Self> {
        self.0.checked_sub(1).map(Self)
    }

    /// The next-faster state within a ladder of `steps` states, if any.
    pub fn step_up(self, steps: usize) -> Option<Self> {
        if self.0 + 1 < steps {
            Some(Self(self.0 + 1))
        } else {
            None
        }
    }
}

impl core::fmt::Display for DvfsState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The discrete set of frequencies every core can be set to.
///
/// Frequencies are evenly spaced between `min` and `max` inclusive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLadder {
    min: Gigahertz,
    max: Gigahertz,
    steps: usize,
}

impl FrequencyLadder {
    /// Creates a ladder of `steps` evenly spaced frequencies in
    /// `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::FrequencyOutOfRange`] when `min > max`, the
    /// bounds are non-positive, or `steps < 2`.
    pub fn new(min: Gigahertz, max: Gigahertz, steps: usize) -> Result<Self, ServerError> {
        if min.value() <= 0.0 || max.value() <= 0.0 || min > max || steps < 2 {
            return Err(ServerError::FrequencyOutOfRange {
                requested_ghz: min.value(),
                min_ghz: min.value(),
                max_ghz: max.value(),
            });
        }
        Ok(Self { min, max, steps })
    }

    /// The paper's ladder: 1.2–2.0 GHz in 9 steps (100 MHz apart).
    pub fn paper_default() -> Self {
        Self::new(Gigahertz::new(1.2), Gigahertz::new(2.0), 9).expect("static ladder is valid")
    }

    /// Number of states on the ladder.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Slowest settable frequency (`f_min`).
    pub fn min_frequency(&self) -> Gigahertz {
        self.min
    }

    /// Fastest settable frequency (`f_max`).
    pub fn max_frequency(&self) -> Gigahertz {
        self.max
    }

    /// The slowest state.
    pub fn bottom_state(&self) -> DvfsState {
        DvfsState::new(0)
    }

    /// The fastest state.
    pub fn top_state(&self) -> DvfsState {
        DvfsState::new(self.steps - 1)
    }

    /// The frequency of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is beyond the ladder (a programming error —
    /// states should only be produced by this ladder).
    pub fn frequency(&self, state: DvfsState) -> Gigahertz {
        assert!(
            state.index() < self.steps,
            "DVFS state {state} beyond {}-step ladder",
            self.steps
        );
        let span = self.max - self.min;
        self.min + span * (state.index() as f64 / (self.steps - 1) as f64)
    }

    /// The highest state whose frequency does not exceed `freq`, or `None`
    /// if even the bottom state is faster than `freq`.
    pub fn state_at_or_below(&self, freq: Gigahertz) -> Option<DvfsState> {
        (0..self.steps)
            .rev()
            .map(DvfsState::new)
            .find(|&s| self.frequency(s) <= freq + Gigahertz::new(1e-9))
    }

    /// The state whose frequency is closest to `freq`, clamping to the
    /// ladder's ends.
    pub fn nearest_state(&self, freq: Gigahertz) -> DvfsState {
        let mut best = DvfsState::new(0);
        let mut best_err = f64::INFINITY;
        for idx in 0..self.steps {
            let s = DvfsState::new(idx);
            let err = (self.frequency(s) - freq).abs().value();
            if err < best_err {
                best_err = err;
                best = s;
            }
        }
        best
    }

    /// Iterates over all states from slowest to fastest.
    pub fn states(&self) -> impl DoubleEndedIterator<Item = DvfsState> + ExactSizeIterator {
        (0..self.steps).map(DvfsState::new)
    }
}

impl Default for FrequencyLadder {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_has_100mhz_steps() {
        let ladder = FrequencyLadder::paper_default();
        assert_eq!(ladder.steps(), 9);
        let freqs: Vec<f64> = ladder
            .states()
            .map(|s| ladder.frequency(s).value())
            .collect();
        for (i, f) in freqs.iter().enumerate() {
            let expected = 1.2 + 0.1 * i as f64;
            assert!((f - expected).abs() < 1e-9, "state {i}: {f} != {expected}");
        }
    }

    #[test]
    fn invalid_ladders_rejected() {
        assert!(FrequencyLadder::new(Gigahertz::new(2.0), Gigahertz::new(1.2), 9).is_err());
        assert!(FrequencyLadder::new(Gigahertz::new(0.0), Gigahertz::new(1.2), 9).is_err());
        assert!(FrequencyLadder::new(Gigahertz::new(1.2), Gigahertz::new(2.0), 1).is_err());
    }

    #[test]
    fn step_navigation() {
        let ladder = FrequencyLadder::paper_default();
        assert_eq!(ladder.bottom_state().step_down(), None);
        assert_eq!(
            ladder.bottom_state().step_up(ladder.steps()),
            Some(DvfsState::new(1))
        );
        assert_eq!(ladder.top_state().step_up(ladder.steps()), None);
        assert_eq!(
            ladder.top_state().step_down(),
            Some(DvfsState::new(ladder.steps() - 2))
        );
    }

    #[test]
    fn state_at_or_below() {
        let ladder = FrequencyLadder::paper_default();
        // 1.55 GHz -> highest state <= 1.55 is 1.5 GHz (index 3).
        let s = ladder.state_at_or_below(Gigahertz::new(1.55)).unwrap();
        assert_eq!(s, DvfsState::new(3));
        // Exactly on a rung.
        let s = ladder.state_at_or_below(Gigahertz::new(1.5)).unwrap();
        assert_eq!(s, DvfsState::new(3));
        // Below the ladder.
        assert_eq!(ladder.state_at_or_below(Gigahertz::new(1.0)), None);
        // Above the ladder clamps to the top.
        let s = ladder.state_at_or_below(Gigahertz::new(3.0)).unwrap();
        assert_eq!(s, ladder.top_state());
    }

    #[test]
    fn nearest_state_clamps() {
        let ladder = FrequencyLadder::paper_default();
        assert_eq!(ladder.nearest_state(Gigahertz::new(0.5)), DvfsState::new(0));
        assert_eq!(
            ladder.nearest_state(Gigahertz::new(5.0)),
            ladder.top_state()
        );
        assert_eq!(
            ladder.nearest_state(Gigahertz::new(1.44)),
            DvfsState::new(2)
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(DvfsState::new(3).to_string(), "P3");
    }
}
