//! Emulated Intel RAPL (Running Average Power Limit) domains.
//!
//! RAPL exposes, per package and per DRAM channel, (a) an energy meter and
//! (b) a power limit that the hardware enforces autonomously. The paper
//! uses the *DRAM* domain as an allocation knob (`m`), and the *package*
//! domain as the state-of-the-art baseline (`Util-Unaware` allocates power
//! with package RAPL, which throttles core frequency uniformly with no
//! knowledge of application utilities).
//!
//! This module reproduces both behaviours:
//!
//! * [`EnergyMeter`] — monotone energy counters sampled like MSR reads;
//! * [`PackageDomain::enforce`] — the hardware's uniform-DVFS response to
//!   a package limit;
//! * [`DramDomain`] — limit ↔ bandwidth clamping for the memory knob.

use powermed_units::{BytesPerSec, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::dvfs::DvfsState;
use crate::power::DramPowerModel;
use crate::spec::ServerSpec;

/// A monotone energy accumulator, the analogue of a RAPL
/// `MSR_*_ENERGY_STATUS` register.
///
/// ```
/// use powermed_server::rapl::EnergyMeter;
/// use powermed_units::{Seconds, Watts};
///
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(Watts::new(50.0), Seconds::new(2.0));
/// assert_eq!(meter.total().value(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    total: Joules,
}

impl EnergyMeter {
    /// A meter reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `power` sustained for `dt` to the meter.
    pub fn accumulate(&mut self, power: Watts, dt: Seconds) {
        self.total += power * dt;
    }

    /// Total energy since construction.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Average power between two meter snapshots taken `dt` apart.
    ///
    /// Returns `None` when `dt` is non-positive (no window elapsed).
    pub fn average_power(before: Self, after: Self, dt: Seconds) -> Option<Watts> {
        if dt.value() <= 0.0 {
            return None;
        }
        Some((after.total - before.total) / dt)
    }
}

/// The package RAPL domain: a power limit enforced by uniformly scaling
/// the frequency of every active core in the package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageDomain {
    limit: Option<Watts>,
    meter: EnergyMeter,
}

impl Default for PackageDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl PackageDomain {
    /// A package domain with no limit programmed.
    pub fn new() -> Self {
        Self {
            limit: None,
            meter: EnergyMeter::new(),
        }
    }

    /// Programs (or clears) the package power limit.
    pub fn set_limit(&mut self, limit: Option<Watts>) {
        self.limit = limit;
    }

    /// The currently programmed limit.
    pub fn limit(&self) -> Option<Watts> {
        self.limit
    }

    /// The package energy meter.
    pub fn meter(&self) -> EnergyMeter {
        self.meter
    }

    /// Accumulates consumed energy (called by the server each step).
    pub fn record(&mut self, power: Watts, dt: Seconds) {
        self.meter.accumulate(power, dt);
    }

    /// The hardware's enforcement response: the highest DVFS state at
    /// which `active_cores` fully busy cores stay within the programmed
    /// limit. With no limit programmed, returns the top state.
    ///
    /// Returns `None` when even the bottom state exceeds the limit —
    /// package RAPL cannot gate cores, so the caller (the OS) must shed
    /// cores or suspend work, exactly the situation that forces the
    /// paper's temporal coordination.
    pub fn enforce(&self, spec: &ServerSpec, active_cores: usize) -> Option<DvfsState> {
        let limit = match self.limit {
            None => return Some(spec.ladder().top_state()),
            Some(l) => l,
        };
        spec.ladder().states().rev().find(|&s| {
            let f = spec.ladder().frequency(s);
            let p = spec.core_power().active_power(f) * active_cores as f64;
            p <= limit + Watts::new(1e-9)
        })
    }
}

/// The DRAM RAPL domain for one DIMM: an explicit power limit in watts
/// (the paper's `m` knob) that caps achievable memory bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramDomain {
    model: DramPowerModel,
    limit: Watts,
    meter: EnergyMeter,
}

impl DramDomain {
    /// Creates a domain with the limit initially at the model's peak
    /// power (unconstrained).
    pub fn new(model: DramPowerModel) -> Self {
        let limit = model.peak_power();
        Self {
            model,
            limit,
            meter: EnergyMeter::new(),
        }
    }

    /// The underlying power/bandwidth model.
    pub fn model(&self) -> &DramPowerModel {
        &self.model
    }

    /// Programs the power limit (`m`), clamped to the model's physical
    /// window.
    pub fn set_limit(&mut self, limit: Watts) {
        self.limit = limit.clamp(self.model.background_power(), self.model.peak_power());
    }

    /// The programmed limit.
    pub fn limit(&self) -> Watts {
        self.limit
    }

    /// Bandwidth available under the current limit.
    pub fn available_bandwidth(&self) -> BytesPerSec {
        self.model.bandwidth_at_limit(self.limit)
    }

    /// Serves a bandwidth demand: returns `(granted bandwidth, power
    /// drawn)` after clamping to the limit.
    pub fn serve(&mut self, demand: BytesPerSec, dt: Seconds) -> (BytesPerSec, Watts) {
        let limit = self.limit;
        self.serve_at_limit(demand, limit, dt)
    }

    /// Serves a bandwidth demand against an *effective* limit instead
    /// of the programmed one — the escape hatch a non-compliant
    /// application uses to run its DIMM hotter than the acked `m`
    /// knob. The effective limit is still clamped to the model's
    /// physical window.
    pub fn serve_at_limit(
        &mut self,
        demand: BytesPerSec,
        limit: Watts,
        dt: Seconds,
    ) -> (BytesPerSec, Watts) {
        let limit = limit.clamp(self.model.background_power(), self.model.peak_power());
        let granted = demand.min(self.model.bandwidth_at_limit(limit));
        let power = self.model.power_at_bandwidth(granted);
        self.meter.accumulate(power, dt);
        (granted, power)
    }

    /// The DRAM energy meter.
    pub fn meter(&self) -> EnergyMeter {
        self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn meter_accumulates_and_averages() {
        let mut m = EnergyMeter::new();
        let before = m;
        m.accumulate(Watts::new(30.0), Seconds::new(2.0));
        m.accumulate(Watts::new(10.0), Seconds::new(2.0));
        assert_eq!(m.total(), Joules::new(80.0));
        let avg = EnergyMeter::average_power(before, m, Seconds::new(4.0)).unwrap();
        assert_eq!(avg, Watts::new(20.0));
        assert_eq!(EnergyMeter::average_power(before, m, Seconds::ZERO), None);
    }

    #[test]
    fn package_unlimited_runs_at_top() {
        let dom = PackageDomain::new();
        assert_eq!(dom.enforce(&spec(), 6), Some(spec().ladder().top_state()));
    }

    #[test]
    fn package_limit_throttles_uniformly() {
        let spec = spec();
        let mut dom = PackageDomain::new();
        // 6 cores at 2.0 GHz draw ~20 W; a 12 W limit must drop frequency.
        dom.set_limit(Some(Watts::new(12.0)));
        let s = dom.enforce(&spec, 6).unwrap();
        assert!(s < spec.ladder().top_state());
        let p = spec.core_power().active_power(spec.ladder().frequency(s)) * 6.0;
        assert!(p <= Watts::new(12.0));
        // And it picks the *highest* state satisfying the limit.
        if let Some(up) = s.step_up(spec.ladder().steps()) {
            let p_up = spec.core_power().active_power(spec.ladder().frequency(up)) * 6.0;
            assert!(p_up > Watts::new(12.0));
        }
    }

    #[test]
    fn package_limit_infeasible_returns_none() {
        let spec = spec();
        let mut dom = PackageDomain::new();
        dom.set_limit(Some(Watts::new(1.0)));
        assert_eq!(dom.enforce(&spec, 6), None);
    }

    #[test]
    fn dram_limit_clamps_bandwidth_and_power() {
        let mut dom = DramDomain::new(DramPowerModel::ddr3_dimm());
        dom.set_limit(Watts::new(6.0));
        assert_eq!(dom.limit(), Watts::new(6.0));
        let demand = BytesPerSec::from_gib_per_sec(12.8);
        let (granted, power) = dom.serve(demand, Seconds::new(1.0));
        assert!(granted < demand);
        assert!((power - Watts::new(6.0)).abs() < Watts::new(1e-9));
        assert_eq!(dom.meter().total(), power * Seconds::new(1.0));
    }

    #[test]
    fn dram_limit_clamped_to_physical_window() {
        let mut dom = DramDomain::new(DramPowerModel::ddr3_dimm());
        dom.set_limit(Watts::new(100.0));
        assert_eq!(dom.limit(), Watts::new(10.0));
        dom.set_limit(Watts::new(0.0));
        assert_eq!(dom.limit(), Watts::new(2.0));
    }

    #[test]
    fn dram_underdemand_draws_less_than_limit() {
        let mut dom = DramDomain::new(DramPowerModel::ddr3_dimm());
        dom.set_limit(Watts::new(10.0));
        let demand = BytesPerSec::from_gib_per_sec(1.0);
        let (granted, power) = dom.serve(demand, Seconds::new(1.0));
        assert_eq!(granted, demand);
        assert!(power < Watts::new(10.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The DRAM domain never grants more bandwidth than its limit
        /// permits, and the power it reports never exceeds the limit.
        #[test]
        fn prop_dram_clamping(limit in 0.0f64..15.0, demand_gib in 0.0f64..20.0) {
            let mut dom = DramDomain::new(DramPowerModel::ddr3_dimm());
            dom.set_limit(Watts::new(limit));
            let demand = BytesPerSec::from_gib_per_sec(demand_gib);
            let (granted, power) = dom.serve(demand, Seconds::new(0.1));
            prop_assert!(granted <= demand + BytesPerSec::new(1e-6));
            prop_assert!(granted <= dom.available_bandwidth() + BytesPerSec::new(1e-6));
            prop_assert!(power <= dom.limit() + Watts::new(1e-9));
            prop_assert!(power >= dom.model().background_power() - Watts::new(1e-9));
        }

        /// Package enforcement always returns the highest ladder state
        /// within the limit, and the state below it (if any) also fits.
        #[test]
        fn prop_package_enforcement_maximal(limit in 2.0f64..30.0, cores in 1usize..12) {
            let spec = ServerSpec::xeon_e5_2620();
            let mut dom = PackageDomain::new();
            dom.set_limit(Some(Watts::new(limit)));
            if let Some(state) = dom.enforce(&spec, cores) {
                let p = spec.core_power().active_power(spec.ladder().frequency(state))
                    * cores as f64;
                prop_assert!(p <= Watts::new(limit) + Watts::new(1e-6));
                if let Some(up) = state.step_up(spec.ladder().steps()) {
                    let p_up = spec.core_power().active_power(spec.ladder().frequency(up))
                        * cores as f64;
                    prop_assert!(p_up > Watts::new(limit));
                }
            } else {
                // Even the bottom state exceeds the limit.
                let bottom = spec.core_power().active_power(spec.ladder().min_frequency())
                    * cores as f64;
                prop_assert!(bottom > Watts::new(limit));
            }
        }

        /// Energy meters are monotone under any accumulation sequence.
        #[test]
        fn prop_meter_monotone(samples in proptest::collection::vec((0.0f64..200.0, 0.001f64..2.0), 1..30)) {
            let mut meter = EnergyMeter::new();
            let mut prev = Joules::ZERO;
            for (p, dt) in samples {
                meter.accumulate(Watts::new(p), Seconds::new(dt));
                prop_assert!(meter.total() >= prev);
                prev = meter.total();
            }
        }
    }
}
