//! The assembled server: topology + knobs + power domains + sleep states.
//!
//! [`Server`] is the actuation surface the policies drive. It plays the
//! role of the Linux enforcement layer of the paper (Sec. III-B):
//! `taskset` for core consolidation, `cpupower` for frequency, DRAM RAPL
//! for memory power, and task suspend/continue for temporal coordination —
//! plus the hardware's own package sleep behaviour.

use std::collections::BTreeMap;

use powermed_units::{BytesPerSec, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::error::ServerError;
use crate::knobs::KnobSetting;
use crate::rapl::DramDomain;
use crate::sleep::{SleepLatency, SocketPowerState};
use crate::spec::ServerSpec;
use crate::topology::{CoreAllocator, CoreId, DimmId, SocketId};

/// Run state of a hosted application (the suspend/continue knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AppRunState {
    /// Scheduled and executing on its cores.
    #[default]
    Running,
    /// Suspended (SIGSTOP analogue): cores halted, state retained in
    /// private caches unless the socket subsequently deep-sleeps.
    Suspended,
}

/// What an application demands of the hardware this instant, produced by
/// the workload model: how busy its cores are and how much memory
/// bandwidth it wants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppDemand {
    /// Fraction of time the app's cores retire work (vs stall).
    pub core_busy: Ratio,
    /// Requested memory bandwidth on the app's local DIMM.
    pub mem_bandwidth: BytesPerSec,
}

impl Default for AppDemand {
    fn default() -> Self {
        Self {
            core_busy: Ratio::ONE,
            mem_bandwidth: BytesPerSec::ZERO,
        }
    }
}

/// An application's placement and knob state on the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Application slot index (used by the core allocator).
    slot: usize,
    /// The cores currently owned (length = knob's `n`).
    cores: Vec<CoreId>,
    /// The `(f, n, m)` knob setting in force.
    knob: KnobSetting,
    /// Running or suspended.
    run_state: AppRunState,
}

impl Assignment {
    /// The cores owned by this application.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// The knob setting in force.
    pub fn knob(&self) -> KnobSetting {
        self.knob
    }

    /// Whether the app is running or suspended.
    pub fn run_state(&self) -> AppRunState {
        self.run_state
    }

    /// The socket hosting this application (its first core's socket).
    pub fn socket(&self, spec: &ServerSpec) -> Option<SocketId> {
        self.cores.first().map(|c| spec.topology().socket_of(*c))
    }
}

/// Per-component decomposition of one instant of server power draw,
/// mirroring the paper's Fig. 1 accounting
/// (`P_idle + P_cm + Σ P_X [+ ESD]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Always-on floor: fans, disks, LLC leakage, DRAM self-refresh.
    pub idle: Watts,
    /// Chip-maintenance power of awake sockets.
    pub uncore: Watts,
    /// Dynamic power attributed to each application (cores + DRAM
    /// traffic), keyed by application name.
    pub apps: BTreeMap<String, Watts>,
    /// Bandwidth granted to each application after DRAM RAPL clamping.
    pub granted_bandwidth: BTreeMap<String, BytesPerSec>,
}

impl PowerBreakdown {
    /// Total server draw (before any ESD contribution).
    pub fn total(&self) -> Watts {
        self.idle + self.uncore + self.apps.values().copied().sum::<Watts>()
    }

    /// Total dynamic power across applications.
    pub fn dynamic(&self) -> Watts {
        self.apps.values().copied().sum()
    }
}

/// A simulated shared server hosting several applications with disjoint
/// core sets, per-app `(f, n, m)` knobs, DRAM RAPL domains and socket
/// deep-sleep.
///
/// # Examples
///
/// ```
/// use powermed_server::{Server, ServerSpec, KnobSetting};
///
/// let mut server = Server::new(ServerSpec::xeon_e5_2620());
/// let knob = KnobSetting::max_for(server.spec());
/// server.host_app("stream", knob)?;
/// assert_eq!(server.assignment("stream").unwrap().cores().len(), 6);
/// # Ok::<(), powermed_server::ServerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    spec: ServerSpec,
    allocator: CoreAllocator,
    apps: BTreeMap<String, Assignment>,
    dram: Vec<DramDomain>,
    sleep_latency: SleepLatency,
    next_slot: usize,
}

impl Server {
    /// Creates an empty server from a platform spec.
    pub fn new(spec: ServerSpec) -> Self {
        let allocator = CoreAllocator::new(spec.topology().clone());
        let dram = (0..spec.topology().total_dimms())
            .map(|_| DramDomain::new(spec.dram_power().clone()))
            .collect();
        Self {
            spec,
            allocator,
            apps: BTreeMap::new(),
            dram,
            sleep_latency: SleepLatency::xeon_pc6(),
            next_slot: 0,
        }
    }

    /// The platform spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Names of currently hosted applications, in name order.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// Number of hosted applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The placement/knob state of `name`.
    pub fn assignment(&self, name: &str) -> Option<&Assignment> {
        self.apps.get(name)
    }

    /// The sleep-transition latency model.
    pub fn sleep_latency(&self) -> &SleepLatency {
        &self.sleep_latency
    }

    /// Hosts a new application with the given initial knob setting.
    ///
    /// # Errors
    ///
    /// * [`ServerError::DuplicateApp`] if `name` is already hosted;
    /// * [`ServerError::CoreCountOutOfRange`] /
    ///   [`ServerError::DramPowerOutOfRange`] if the knob is invalid;
    /// * [`ServerError::InsufficientCores`] if the free cores cannot
    ///   satisfy the knob's `n`.
    pub fn host_app(&mut self, name: &str, knob: KnobSetting) -> Result<(), ServerError> {
        if self.apps.contains_key(name) {
            return Err(ServerError::DuplicateApp(name.to_string()));
        }
        let knob =
            KnobSetting::validated(&self.spec, knob.dvfs(), knob.cores(), knob.dram_limit())?;
        let slot = self.next_slot;
        let cores = self.allocator.allocate(slot, knob.cores())?;
        self.next_slot += 1;
        self.apply_dram_limit(&cores, knob.dram_limit());
        self.apps.insert(
            name.to_string(),
            Assignment {
                slot,
                cores,
                knob,
                run_state: AppRunState::Running,
            },
        );
        Ok(())
    }

    /// Removes an application, releasing its cores.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownApp`] when `name` is not hosted.
    pub fn remove_app(&mut self, name: &str) -> Result<(), ServerError> {
        let assignment = self
            .apps
            .remove(name)
            .ok_or_else(|| ServerError::UnknownApp(name.to_string()))?;
        self.allocator.release(assignment.slot);
        Ok(())
    }

    /// Applies a new `(f, n, m)` knob setting to `name`, growing or
    /// shrinking its core set as needed (the `taskset` + `cpupower` +
    /// DRAM-RAPL actuation of Sec. III-B).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownApp`] for unknown apps, knob
    /// validation errors, or [`ServerError::InsufficientCores`] when
    /// growing `n` beyond the free cores.
    pub fn set_knobs(&mut self, name: &str, knob: KnobSetting) -> Result<(), ServerError> {
        let knob =
            KnobSetting::validated(&self.spec, knob.dvfs(), knob.cores(), knob.dram_limit())?;
        let slot = {
            let assignment = self
                .apps
                .get(name)
                .ok_or_else(|| ServerError::UnknownApp(name.to_string()))?;
            assignment.slot
        };
        let current = self.allocator.cores_of_app(slot).len();
        let new_cores = match knob.cores().cmp(&current) {
            core::cmp::Ordering::Less => {
                self.allocator.shrink_to(slot, knob.cores());
                self.allocator.cores_of_app(slot)
            }
            core::cmp::Ordering::Greater => {
                self.allocator.allocate(slot, knob.cores() - current)?;
                self.allocator.cores_of_app(slot)
            }
            core::cmp::Ordering::Equal => self.allocator.cores_of_app(slot),
        };
        self.apply_dram_limit(&new_cores, knob.dram_limit());
        let assignment = self.apps.get_mut(name).expect("checked above");
        assignment.cores = new_cores;
        assignment.knob = knob;
        Ok(())
    }

    /// Suspends an application (temporal coordination OFF period).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownApp`] when `name` is not hosted.
    pub fn suspend_app(&mut self, name: &str) -> Result<(), ServerError> {
        self.set_run_state(name, AppRunState::Suspended)
    }

    /// Resumes a suspended application (ON period).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownApp`] when `name` is not hosted.
    pub fn resume_app(&mut self, name: &str) -> Result<(), ServerError> {
        self.set_run_state(name, AppRunState::Running)
    }

    fn set_run_state(&mut self, name: &str, state: AppRunState) -> Result<(), ServerError> {
        let assignment = self
            .apps
            .get_mut(name)
            .ok_or_else(|| ServerError::UnknownApp(name.to_string()))?;
        assignment.run_state = state;
        Ok(())
    }

    /// The power state each socket would be in right now: a socket deep
    /// sleeps (PC6) when it hosts no *running* application cores.
    pub fn socket_states(&self) -> Vec<(SocketId, SocketPowerState)> {
        self.spec
            .topology()
            .all_sockets()
            .map(|s| {
                let busy = self.apps.values().any(|a| {
                    a.run_state == AppRunState::Running
                        && a.cores
                            .iter()
                            .any(|c| self.spec.topology().socket_of(*c) == s)
                });
                let state = if busy {
                    SocketPowerState::Active
                } else {
                    SocketPowerState::DeepSleep
                };
                (s, state)
            })
            .collect()
    }

    /// Whether any socket is awake (and thus `P_cm` is being paid).
    pub fn any_socket_active(&self) -> bool {
        self.socket_states()
            .iter()
            .any(|(_, st)| st.draws_uncore_power())
    }

    /// Computes one instant of power draw given each running app's
    /// demand, clamping memory traffic through the DRAM RAPL domains.
    ///
    /// Suspended apps draw nothing; a fully idle server draws `P_idle`.
    /// `dt` feeds the domain energy meters.
    ///
    /// Unknown names in `demands` are ignored (the app may have departed
    /// between sampling and accounting, event E3).
    pub fn power_draw(
        &mut self,
        demands: &BTreeMap<String, AppDemand>,
        dt: Seconds,
    ) -> PowerBreakdown {
        self.power_draw_with(demands, &BTreeMap::new(), dt)
    }

    /// [`Server::power_draw`] with per-app *effective-knob* overrides:
    /// an overridden app's core power is computed at the override's
    /// frequency and its memory traffic is served against the
    /// override's DRAM limit instead of the programmed one. This is
    /// the physics of knob non-compliance — the assignment (what a
    /// readback shows) stays untouched; only the drawn power moves.
    pub fn power_draw_with(
        &mut self,
        demands: &BTreeMap<String, AppDemand>,
        overrides: &BTreeMap<String, KnobSetting>,
        dt: Seconds,
    ) -> PowerBreakdown {
        let uncore = if self.any_socket_active() {
            self.spec.chip_maintenance_power()
        } else {
            Watts::ZERO
        };
        let mut apps = BTreeMap::new();
        let mut granted_bandwidth = BTreeMap::new();
        let names: Vec<String> = self.apps.keys().cloned().collect();
        for name in names {
            let (cores, knob, running, dimm) = {
                let a = &self.apps[&name];
                let dimm = a
                    .socket(&self.spec)
                    .map(|s| self.spec.topology().local_dimm(s));
                (
                    a.cores.len(),
                    a.knob,
                    a.run_state == AppRunState::Running,
                    dimm,
                )
            };
            if !running {
                apps.insert(name.clone(), Watts::ZERO);
                granted_bandwidth.insert(name, BytesPerSec::ZERO);
                continue;
            }
            let demand = demands.get(&name).copied().unwrap_or_default();
            let effective = overrides.get(&name).copied();
            let knob = effective.unwrap_or(knob);
            let freq = self.spec.ladder().frequency(knob.dvfs());
            let core_power = self
                .spec
                .core_power()
                .power_at_utilization(freq, demand.core_busy)
                * cores as f64;
            let (granted, dram_power) = match dimm {
                Some(DimmId(d)) => match effective {
                    Some(k) => {
                        self.dram[d].serve_at_limit(demand.mem_bandwidth, k.dram_limit(), dt)
                    }
                    None => self.dram[d].serve(demand.mem_bandwidth, dt),
                },
                None => (BytesPerSec::ZERO, Watts::ZERO),
            };
            apps.insert(name.clone(), core_power + dram_power);
            granted_bandwidth.insert(name, granted);
        }
        PowerBreakdown {
            idle: self.spec.idle_power(),
            uncore,
            apps,
            granted_bandwidth,
        }
    }

    /// The DRAM domain serving `dimm` (for inspection).
    pub fn dram_domain(&self, dimm: DimmId) -> Option<&DramDomain> {
        self.dram.get(dimm.0)
    }

    fn apply_dram_limit(&mut self, cores: &[CoreId], limit: Watts) {
        if let Some(first) = cores.first() {
            let socket = self.spec.topology().socket_of(*first);
            let dimm = self.spec.topology().local_dimm(socket);
            self.dram[dimm.0].set_limit(limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsState;

    fn server() -> Server {
        Server::new(ServerSpec::xeon_e5_2620())
    }

    fn max_knob(s: &Server) -> KnobSetting {
        KnobSetting::max_for(s.spec())
    }

    #[test]
    fn hosting_and_removal() {
        let mut s = server();
        let knob = max_knob(&s);
        s.host_app("a", knob).unwrap();
        s.host_app("b", knob).unwrap();
        assert_eq!(s.app_count(), 2);
        assert_eq!(
            s.host_app("a", knob),
            Err(ServerError::DuplicateApp("a".into()))
        );
        s.remove_app("a").unwrap();
        assert_eq!(s.remove_app("a"), Err(ServerError::UnknownApp("a".into())));
        assert_eq!(s.app_names(), vec!["b".to_string()]);
    }

    #[test]
    fn apps_get_disjoint_socket_local_cores() {
        let mut s = server();
        let knob = max_knob(&s);
        s.host_app("a", knob).unwrap();
        s.host_app("b", knob).unwrap();
        let a = s.assignment("a").unwrap();
        let b = s.assignment("b").unwrap();
        assert_eq!(a.cores().len(), 6);
        assert_eq!(b.cores().len(), 6);
        assert_ne!(a.socket(s.spec()), b.socket(s.spec()));
        let mut all: Vec<CoreId> = a.cores().iter().chain(b.cores()).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 12, "core sets are disjoint");
    }

    #[test]
    fn set_knobs_grows_and_shrinks_cores() {
        let mut s = server();
        let knob = max_knob(&s);
        s.host_app("a", knob).unwrap();
        s.set_knobs("a", knob.with_cores(3)).unwrap();
        assert_eq!(s.assignment("a").unwrap().cores().len(), 3);
        s.set_knobs("a", knob.with_cores(5)).unwrap();
        assert_eq!(s.assignment("a").unwrap().cores().len(), 5);
        // Frequency change leaves cores in place.
        s.set_knobs("a", knob.with_cores(5).with_dvfs(DvfsState::new(0)))
            .unwrap();
        assert_eq!(s.assignment("a").unwrap().knob().dvfs(), DvfsState::new(0));
    }

    #[test]
    fn idle_server_draws_only_p_idle() {
        let mut s = server();
        let bd = s.power_draw(&BTreeMap::new(), Seconds::new(0.1));
        assert_eq!(bd.total(), Watts::new(50.0));
        assert_eq!(bd.uncore, Watts::ZERO);
    }

    #[test]
    fn one_running_app_pays_uncore_once() {
        let mut s = server();
        s.host_app("a", max_knob(&s)).unwrap();
        let mut demands = BTreeMap::new();
        demands.insert("a".to_string(), AppDemand::default());
        let bd = s.power_draw(&demands, Seconds::new(0.1));
        assert_eq!(bd.uncore, Watts::new(20.0));
        // 50 idle + 20 cm + ~20 dynamic ≈ 90 W (Sec. II-A).
        let total = bd.total().value();
        assert!((total - 90.0).abs() < 5.0, "total was {total}");
    }

    #[test]
    fn two_apps_amortize_uncore() {
        let mut s = server();
        s.host_app("a", max_knob(&s)).unwrap();
        s.host_app("b", max_knob(&s)).unwrap();
        let mut demands = BTreeMap::new();
        demands.insert("a".to_string(), AppDemand::default());
        demands.insert("b".to_string(), AppDemand::default());
        let bd = s.power_draw(&demands, Seconds::new(0.1));
        assert_eq!(bd.uncore, Watts::new(20.0), "P_cm paid once, not twice");
        let total = bd.total().value();
        // 50 + 20 + 20 + 20 ≈ 110 W (Sec. II-A).
        assert!((total - 110.0).abs() < 6.0, "total was {total}");
    }

    #[test]
    fn suspended_app_draws_nothing_and_sleeps_socket() {
        let mut s = server();
        s.host_app("a", max_knob(&s)).unwrap();
        s.suspend_app("a").unwrap();
        assert!(!s.any_socket_active());
        let mut demands = BTreeMap::new();
        demands.insert("a".to_string(), AppDemand::default());
        let bd = s.power_draw(&demands, Seconds::new(0.1));
        assert_eq!(bd.total(), Watts::new(50.0));
        s.resume_app("a").unwrap();
        assert!(s.any_socket_active());
    }

    #[test]
    fn dram_limit_clamps_granted_bandwidth() {
        let mut s = server();
        let knob = max_knob(&s).with_dram_limit(Watts::new(3.0));
        s.host_app("a", knob).unwrap();
        let mut demands = BTreeMap::new();
        demands.insert(
            "a".to_string(),
            AppDemand {
                core_busy: Ratio::new(0.5),
                mem_bandwidth: BytesPerSec::from_gib_per_sec(12.8),
            },
        );
        let bd = s.power_draw(&demands, Seconds::new(0.1));
        let granted = bd.granted_bandwidth["a"];
        assert!(granted < BytesPerSec::from_gib_per_sec(2.0));
    }

    #[test]
    fn unknown_demand_names_ignored() {
        let mut s = server();
        let mut demands = BTreeMap::new();
        demands.insert("ghost".to_string(), AppDemand::default());
        let bd = s.power_draw(&demands, Seconds::new(0.1));
        assert!(bd.apps.is_empty());
    }

    #[test]
    fn knob_validation_enforced_on_host() {
        let mut s = server();
        let bad = KnobSetting::new(DvfsState::new(0), 9, Watts::new(3.0));
        assert!(matches!(
            s.host_app("a", bad),
            Err(ServerError::CoreCountOutOfRange { .. })
        ));
    }
}
