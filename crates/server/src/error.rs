//! Error types for the server substrate.

use crate::topology::{CoreId, SocketId};

/// Errors raised when configuring or operating the simulated server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// A frequency outside the platform's DVFS ladder was requested.
    FrequencyOutOfRange {
        /// Requested frequency in GHz.
        requested_ghz: f64,
        /// Minimum supported frequency in GHz.
        min_ghz: f64,
        /// Maximum supported frequency in GHz.
        max_ghz: f64,
    },
    /// A core count outside the per-application allocation range.
    CoreCountOutOfRange {
        /// Requested number of cores.
        requested: usize,
        /// Maximum cores available to one application.
        max: usize,
    },
    /// A DRAM power limit outside the RAPL-supported window.
    DramPowerOutOfRange {
        /// Requested per-DIMM limit in watts.
        requested_w: f64,
        /// Minimum supported limit in watts.
        min_w: f64,
        /// Maximum supported limit in watts.
        max_w: f64,
    },
    /// Not enough free cores to satisfy an allocation request.
    InsufficientCores {
        /// Cores requested.
        requested: usize,
        /// Cores currently free.
        available: usize,
    },
    /// The referenced core does not exist on this server.
    UnknownCore(CoreId),
    /// The referenced socket does not exist on this server.
    UnknownSocket(SocketId),
    /// The referenced application is not hosted on this server.
    UnknownApp(String),
    /// An application with this identifier is already hosted.
    DuplicateApp(String),
    /// A knob write was rejected by the actuation interface (the MSR /
    /// sysfs write failed). Raised by the fault-injected substrate; a
    /// retry may succeed.
    ActuationRejected(String),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::FrequencyOutOfRange {
                requested_ghz,
                min_ghz,
                max_ghz,
            } => write!(
                f,
                "frequency {requested_ghz} GHz outside DVFS range [{min_ghz}, {max_ghz}] GHz"
            ),
            Self::CoreCountOutOfRange { requested, max } => {
                write!(f, "core count {requested} outside range [1, {max}]")
            }
            Self::DramPowerOutOfRange {
                requested_w,
                min_w,
                max_w,
            } => write!(
                f,
                "DRAM power limit {requested_w} W outside RAPL range [{min_w}, {max_w}] W"
            ),
            Self::InsufficientCores {
                requested,
                available,
            } => write!(f, "requested {requested} cores but only {available} free"),
            Self::UnknownCore(id) => write!(f, "unknown core {id}"),
            Self::UnknownSocket(id) => write!(f, "unknown socket {id}"),
            Self::UnknownApp(name) => write!(f, "unknown application {name:?}"),
            Self::DuplicateApp(name) => write!(f, "application {name:?} already hosted"),
            Self::ActuationRejected(name) => {
                write!(f, "knob write for {name:?} rejected by the actuation path")
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ServerError::FrequencyOutOfRange {
            requested_ghz: 2.5,
            min_ghz: 1.2,
            max_ghz: 2.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("2.5"));
        assert!(msg.contains("1.2"));

        let err = ServerError::InsufficientCores {
            requested: 8,
            available: 3,
        };
        assert!(err.to_string().contains("8"));
        assert!(err.to_string().contains("3"));

        let err = ServerError::ActuationRejected("x264".into());
        assert!(err.to_string().contains("x264"));
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ServerError>();
    }
}
