//! Analytic power models for cores and DRAM.
//!
//! Two observations from the paper drive the model shapes:
//!
//! 1. **Core power is super-linear in frequency** (`P ∝ f³` term from the
//!    classic `C·V²·f` law with voltage scaling), so shedding frequency is
//!    cheap at the top of the ladder and expensive at the bottom. This
//!    yields the diminishing-returns utility curves of Fig. 2.
//! 2. **DRAM power buys bandwidth** through the RAPL memory limit, so a
//!    memory-bound application gains more from a watt of DRAM budget than
//!    from a watt of core budget (Fig. 3 / Fig. 9d).

use powermed_units::{BytesPerSec, Gigahertz, Ratio, Watts};
use serde::{Deserialize, Serialize};

/// Per-core dynamic power model: `P(f) = base + lin·f + cube·f³` for an
/// active core at frequency `f` (in GHz), scaled by utilization.
///
/// A power-gated core draws zero (its private caches are flushed and
/// gated, as in the paper's core-consolidation knob).
///
/// ```
/// use powermed_server::power::CorePowerModel;
/// use powermed_units::Gigahertz;
///
/// let model = CorePowerModel::xeon_e5_2620();
/// let slow = model.active_power(Gigahertz::new(1.2));
/// let fast = model.active_power(Gigahertz::new(2.0));
/// assert!(fast > slow * 1.5, "frequency scaling is super-linear");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Static per-core overhead while the core is un-gated (W).
    base: Watts,
    /// Linear coefficient (W per GHz): clock-tree and short-circuit power.
    lin_w_per_ghz: f64,
    /// Cubic coefficient (W per GHz³): switching power under DVFS.
    cube_w_per_ghz3: f64,
    /// Fraction of `active_power` still drawn when the core stalls on
    /// memory (pipeline idling but not clock-gated).
    stall_fraction: Ratio,
}

impl CorePowerModel {
    /// Creates a model from raw coefficients.
    pub fn new(
        base: Watts,
        lin_w_per_ghz: f64,
        cube_w_per_ghz3: f64,
        stall_fraction: Ratio,
    ) -> Self {
        Self {
            base,
            lin_w_per_ghz,
            cube_w_per_ghz3,
            stall_fraction,
        }
    }

    /// Coefficients calibrated for the paper's Xeon E5-2620 so that six
    /// cores at 2 GHz plus local-DIMM traffic draw the ~20 W dynamic power
    /// of the Sec. II-A running example, and all twelve cores plus both
    /// DIMMs peak at Table I's 60 W.
    pub fn xeon_e5_2620() -> Self {
        // Calibrated to the paper's own platform observations:
        //
        // * six cores at the 1.2 GHz floor draw ~10 W of dynamic power
        //   (Sec. IV-B: "each [application] needs a minimum of 10 W"):
        //   6 · P(1.2) ≈ 8.2 W cores + ~2 W DRAM background ≈ 10 W;
        // * a six-core application at 2.0 GHz draws ~20 W dynamic
        //   (Sec. II-A): 6 · P(2.0) ≈ 16.8 W cores + DRAM traffic.
        //
        // P(f) = 0.05 + 0.95·f + 0.105·f³: P(1.2) ≈ 1.37, P(2.0) ≈ 2.79.
        // The law is dominated by its linear term: in this frequency
        // window voltage barely scales, so performance is close to
        // *linear* in core power — the regime the paper's Fig. 2 utility
        // curves show (a 20% dynamic power cut costing ~20% performance
        // for compute-bound codes).
        Self {
            base: Watts::new(0.05),
            lin_w_per_ghz: 0.95,
            cube_w_per_ghz3: 0.105,
            stall_fraction: Ratio::new(0.40),
        }
    }

    /// Power of one fully busy core at `freq`.
    pub fn active_power(&self, freq: Gigahertz) -> Watts {
        let f = freq.value();
        self.base + Watts::new(self.lin_w_per_ghz * f + self.cube_w_per_ghz3 * f * f * f)
    }

    /// Power of one core at `freq` that is busy for `busy` fraction of the
    /// time and stalled (waiting on memory) for the rest.
    ///
    /// `busy` outside `[0, 1]` is clamped.
    pub fn power_at_utilization(&self, freq: Gigahertz, busy: Ratio) -> Watts {
        let busy = Ratio::new(busy.value().clamp(0.0, 1.0));
        let p = self.active_power(freq);
        p * busy + p * self.stall_fraction * busy.complement()
    }

    /// Fraction of active power drawn while stalled.
    pub fn stall_fraction(&self) -> Ratio {
        self.stall_fraction
    }
}

impl Default for CorePowerModel {
    fn default() -> Self {
        Self::xeon_e5_2620()
    }
}

/// Per-DIMM DRAM power/bandwidth model under a RAPL memory power limit.
///
/// A DIMM draws a background power (refresh, PLL) plus traffic-dependent
/// activate/precharge/IO power linear in achieved bandwidth. The RAPL
/// limit `m` caps total DIMM power, so it also caps achievable bandwidth:
///
/// `bw_cap(m) = bw_peak · (m - P_bg) / (P_peak - P_bg)`, clamped to
/// `[0, bw_peak]`.
///
/// ```
/// use powermed_server::power::DramPowerModel;
/// use powermed_units::Watts;
///
/// let dram = DramPowerModel::ddr3_dimm();
/// let full = dram.bandwidth_at_limit(Watts::new(10.0));
/// let capped = dram.bandwidth_at_limit(Watts::new(3.0));
/// assert!(capped.value() < full.value() / 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramPowerModel {
    /// Background (traffic-independent) power while the DIMM is online.
    background: Watts,
    /// Power at peak bandwidth.
    peak_power: Watts,
    /// Peak deliverable bandwidth per DIMM.
    peak_bandwidth: BytesPerSec,
}

impl DramPowerModel {
    /// Creates a model from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if `peak_power <= background` or `peak_bandwidth` is
    /// non-positive — such a DIMM could never serve traffic.
    pub fn new(background: Watts, peak_power: Watts, peak_bandwidth: BytesPerSec) -> Self {
        assert!(
            peak_power > background && peak_bandwidth.value() > 0.0,
            "DRAM model requires peak_power > background and positive bandwidth"
        );
        Self {
            background,
            peak_power,
            peak_bandwidth,
        }
    }

    /// An 8 GB DDR3 DIMM as on the paper's platform: 2 W background,
    /// 10 W at a 12.8 GB/s peak (one channel of DDR3-1600).
    pub fn ddr3_dimm() -> Self {
        Self::new(
            Watts::new(2.0),
            Watts::new(10.0),
            BytesPerSec::from_gib_per_sec(12.8),
        )
    }

    /// Background power (drawn whenever the DIMM is online).
    pub fn background_power(&self) -> Watts {
        self.background
    }

    /// Power at peak bandwidth.
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// Peak bandwidth with an unconstrained power limit.
    pub fn peak_bandwidth(&self) -> BytesPerSec {
        self.peak_bandwidth
    }

    /// The maximum bandwidth sustainable under RAPL limit `limit`.
    pub fn bandwidth_at_limit(&self, limit: Watts) -> BytesPerSec {
        let span = self.peak_power - self.background;
        let frac = ((limit - self.background) / span).clamp(0.0, 1.0);
        self.peak_bandwidth * frac
    }

    /// The power actually drawn when serving `bandwidth` of traffic
    /// (independent of the limit; callers should first clamp traffic via
    /// [`Self::bandwidth_at_limit`]).
    pub fn power_at_bandwidth(&self, bandwidth: BytesPerSec) -> Watts {
        let frac = (bandwidth / self.peak_bandwidth).clamp(0.0, 1.0);
        self.background + (self.peak_power - self.background) * frac
    }

    /// The minimum RAPL limit that still permits `bandwidth` of traffic.
    pub fn limit_for_bandwidth(&self, bandwidth: BytesPerSec) -> Watts {
        self.power_at_bandwidth(bandwidth)
    }
}

impl Default for DramPowerModel {
    fn default() -> Self {
        Self::ddr3_dimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_power_is_monotone_in_frequency() {
        let model = CorePowerModel::xeon_e5_2620();
        let mut prev = Watts::ZERO;
        for step in 0..9 {
            let f = Gigahertz::new(1.2 + 0.1 * step as f64);
            let p = model.active_power(f);
            assert!(p > prev, "power must rise with frequency");
            prev = p;
        }
    }

    #[test]
    fn core_power_calibration() {
        let model = CorePowerModel::xeon_e5_2620();
        let p = model.active_power(Gigahertz::new(2.0)).value();
        // 6 cores at 2 GHz ≈ 17 W (Sec. II-A's ~20 W app with DRAM).
        assert!((p - 2.79).abs() < 0.05, "per-core peak was {p}");
        let floor = model.active_power(Gigahertz::new(1.2)).value();
        // 6 cores at 1.2 GHz ≈ 8.2 W (+ DRAM ≈ the paper's 10 W floor).
        assert!((floor - 1.37).abs() < 0.05, "per-core floor was {floor}");
    }

    #[test]
    fn super_linear_scaling_means_marginal_watts_cheaper_at_top() {
        let model = CorePowerModel::xeon_e5_2620();
        // Power saved dropping 2.0 -> 1.9 exceeds that from 1.3 -> 1.2.
        let top_drop =
            model.active_power(Gigahertz::new(2.0)) - model.active_power(Gigahertz::new(1.9));
        let bottom_drop =
            model.active_power(Gigahertz::new(1.3)) - model.active_power(Gigahertz::new(1.2));
        assert!(top_drop > bottom_drop);
    }

    #[test]
    fn utilization_scales_between_stall_and_active() {
        let model = CorePowerModel::xeon_e5_2620();
        let f = Gigahertz::new(2.0);
        let active = model.active_power(f);
        let stalled = model.power_at_utilization(f, Ratio::new(0.0));
        let busy = model.power_at_utilization(f, Ratio::new(1.0));
        assert_eq!(busy, active);
        assert!((stalled / active - model.stall_fraction().value()).abs() < 1e-9);
        let half = model.power_at_utilization(f, Ratio::new(0.5));
        assert!(half > stalled && half < busy);
        // Out-of-range utilization clamps.
        assert_eq!(model.power_at_utilization(f, Ratio::new(2.0)), busy);
        assert_eq!(model.power_at_utilization(f, Ratio::new(-1.0)), stalled);
    }

    #[test]
    fn dram_bandwidth_limit_mapping() {
        let dram = DramPowerModel::ddr3_dimm();
        assert_eq!(
            dram.bandwidth_at_limit(Watts::new(10.0)),
            dram.peak_bandwidth()
        );
        assert_eq!(dram.bandwidth_at_limit(Watts::new(2.0)), BytesPerSec::ZERO);
        // Limits below background clamp to zero, above peak to peak.
        assert_eq!(dram.bandwidth_at_limit(Watts::new(1.0)), BytesPerSec::ZERO);
        assert_eq!(
            dram.bandwidth_at_limit(Watts::new(50.0)),
            dram.peak_bandwidth()
        );
    }

    #[test]
    fn dram_power_bandwidth_roundtrip() {
        let dram = DramPowerModel::ddr3_dimm();
        for m in [3.0, 5.0, 7.5, 10.0] {
            let limit = Watts::new(m);
            let bw = dram.bandwidth_at_limit(limit);
            let p = dram.power_at_bandwidth(bw);
            assert!(
                (p - limit).abs() < Watts::new(1e-9),
                "power at limit-capped bandwidth equals the limit"
            );
            assert!((dram.limit_for_bandwidth(bw) - limit).abs() < Watts::new(1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "DRAM model requires")]
    fn invalid_dram_model_panics() {
        let _ = DramPowerModel::new(
            Watts::new(5.0),
            Watts::new(4.0),
            BytesPerSec::from_gib_per_sec(1.0),
        );
    }
}
