//! Simulated shared-server substrate for `powermed`.
//!
//! The paper evaluates on a dual-socket Intel Xeon E5-2620 with per-core
//! DVFS, socket-level PC6 deep sleep, Intel RAPL package/DRAM power
//! domains, and a Lead-Acid UPS. This crate reproduces that platform as an
//! analytic model so the power-management policies in `powermed-core` can
//! exercise exactly the same knobs the paper uses:
//!
//! * **`f`** — per-core frequency scaling over a 9-step 1.2–2.0 GHz ladder
//!   ([`dvfs::FrequencyLadder`]);
//! * **`n`** — core consolidation: power-gating a subset of an
//!   application's cores ([`topology`]);
//! * **`m`** — DRAM RAPL power limits per DIMM in 1 W steps over 3–10 W
//!   ([`rapl::DramDomain`]);
//! * socket deep sleep (PC6) with realistic wake-up latency
//!   ([`sleep::SocketPowerState`]).
//!
//! The model's constants default to the paper's Table I
//! (`P_idle` = 50 W, `P_cm` = 20 W, `P_dynamic` ≤ 60 W, 12 cores, 2 NUMA
//! nodes) via [`spec::ServerSpec::xeon_e5_2620`].
//!
//! # Example
//!
//! ```
//! use powermed_server::spec::ServerSpec;
//!
//! let spec = ServerSpec::xeon_e5_2620();
//! let grid = spec.knob_grid();
//! // The paper's knob space: 9 DVFS steps x 6 cores x 8 DRAM watt levels.
//! assert_eq!(grid.len(), 9 * 6 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod error;
pub mod knobs;
pub mod power;
pub mod rapl;
pub mod server;
pub mod sleep;
pub mod spec;
pub mod topology;

pub use error::ServerError;
pub use knobs::{KnobGrid, KnobSetting};
pub use server::Server;
pub use spec::ServerSpec;
