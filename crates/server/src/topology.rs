//! Socket/core/DIMM layout and core allocation.
//!
//! The paper's Fig. 1 platform: two sockets, each with its own cores,
//! private L1/L2 caches, a shared LLC, one memory controller and a local
//! DIMM. Applications spatially multiplex *disjoint* core sets (no direct
//! resource contention), which is exactly the regime in which power
//! struggles arise.

use serde::{Deserialize, Serialize};

use crate::error::ServerError;

/// Identifier of a socket (NUMA node).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SocketId(pub usize);

impl core::fmt::Display for SocketId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

/// Identifier of a physical core, global across sockets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CoreId(pub usize);

impl core::fmt::Display for CoreId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of a DIMM (one per memory controller / socket on the paper's
/// platform).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DimmId(pub usize);

impl core::fmt::Display for DimmId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "dimm{}", self.0)
    }
}

/// The physical layout of a server: sockets, cores per socket, DIMMs.
///
/// ```
/// use powermed_server::topology::{CoreId, SocketId, Topology};
///
/// let topo = Topology::new(2, 6, 2);
/// assert_eq!(topo.total_cores(), 12);
/// assert_eq!(topo.socket_of(CoreId(7)), SocketId(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
    dimms: usize,
}

impl Topology {
    /// Creates a topology with `sockets` sockets of `cores_per_socket`
    /// cores each and `dimms` DIMMs.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(sockets: usize, cores_per_socket: usize, dimms: usize) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0 && dimms > 0);
        Self {
            sockets,
            cores_per_socket,
            dimms,
        }
    }

    /// Number of sockets (NUMA nodes).
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of cores on each socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Total core count across sockets.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of DIMMs.
    pub fn total_dimms(&self) -> usize {
        self.dimms
    }

    /// The socket that hosts `core`.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// The DIMM local to `socket` (round-robin when DIMMs != sockets).
    pub fn local_dimm(&self, socket: SocketId) -> DimmId {
        DimmId(socket.0 % self.dimms)
    }

    /// All cores of `socket`, in id order.
    pub fn cores_of(&self, socket: SocketId) -> impl ExactSizeIterator<Item = CoreId> {
        let start = socket.0 * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId)
    }

    /// All core ids on the server.
    pub fn all_cores(&self) -> impl ExactSizeIterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }

    /// All socket ids.
    pub fn all_sockets(&self) -> impl ExactSizeIterator<Item = SocketId> {
        (0..self.sockets).map(SocketId)
    }

    /// Whether `core` exists on this server.
    pub fn contains_core(&self, core: CoreId) -> bool {
        core.0 < self.total_cores()
    }
}

/// Tracks which cores are assigned to which application, enforcing the
/// paper's "disjoint direct resources" co-location discipline: each
/// application owns a socket-local, mutually exclusive core set
/// (the simulated analogue of `taskset`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreAllocator {
    topology: Topology,
    /// `owner[i]` is the index of the owning application slot for core `i`.
    owner: Vec<Option<usize>>,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new(2, 6, 2)
    }
}

impl CoreAllocator {
    /// Creates an allocator with every core free.
    pub fn new(topology: Topology) -> Self {
        let owner = vec![None; topology.total_cores()];
        Self { topology, owner }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of currently unassigned cores.
    pub fn free_cores(&self) -> usize {
        self.owner.iter().filter(|o| o.is_none()).count()
    }

    /// Cores currently owned by application slot `app`.
    pub fn cores_of_app(&self, app: usize) -> Vec<CoreId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(app))
            .map(|(i, _)| CoreId(i))
            .collect()
    }

    /// Allocates `count` cores to application slot `app`, preferring to
    /// keep each application within a single socket (NUMA affinity, as the
    /// paper pins each app to one node and its local DIMM).
    ///
    /// Growth requests prefer the socket(s) the application already
    /// occupies, so incremental `set_knobs` growth never fragments an
    /// app across sockets while its home socket has room.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InsufficientCores`] when fewer than `count`
    /// cores are free.
    pub fn allocate(&mut self, app: usize, count: usize) -> Result<Vec<CoreId>, ServerError> {
        let available = self.free_cores();
        if count > available {
            return Err(ServerError::InsufficientCores {
                requested: count,
                available,
            });
        }
        let resident: Vec<SocketId> = self
            .cores_of_app(app)
            .iter()
            .map(|c| self.topology.socket_of(*c))
            .collect();
        let free_on = |owner: &[Option<usize>], s: SocketId| {
            self.topology
                .cores_of(s)
                .filter(|c| owner[c.0].is_none())
                .count()
        };

        // Socket visit order: resident sockets first (most free first),
        // then — for fresh apps — a socket that fits the whole request,
        // then the rest by free count.
        let mut order: Vec<SocketId> = self.topology.all_sockets().collect();
        order.sort_by_key(|s| {
            let is_resident = resident.contains(s);
            let free = free_on(&self.owner, *s);
            let fits = free >= count;
            (
                core::cmp::Reverse(is_resident as usize),
                core::cmp::Reverse(if resident.is_empty() && fits { 1 } else { 0 }),
                core::cmp::Reverse(free),
                s.0,
            )
        });

        let mut chosen: Vec<CoreId> = Vec::with_capacity(count);
        'outer: for socket in order {
            for core in self.topology.cores_of(socket) {
                if chosen.len() == count {
                    break 'outer;
                }
                if self.owner[core.0].is_none() {
                    chosen.push(core);
                }
            }
        }
        for core in &chosen {
            self.owner[core.0] = Some(app);
        }
        Ok(chosen)
    }

    /// Releases every core owned by application slot `app`, returning how
    /// many were freed.
    pub fn release(&mut self, app: usize) -> usize {
        let mut freed = 0;
        for o in &mut self.owner {
            if *o == Some(app) {
                *o = None;
                freed += 1;
            }
        }
        freed
    }

    /// Shrinks application `app` to `keep` cores (power gating the rest),
    /// returning the released cores. Keeps the lowest-numbered cores so
    /// the retained set stays socket-local.
    pub fn shrink_to(&mut self, app: usize, keep: usize) -> Vec<CoreId> {
        let mut owned = self.cores_of_app(app);
        owned.sort();
        let released: Vec<CoreId> = owned.split_off(keep.min(owned.len()));
        for core in &released {
            self.owner[core.0] = None;
        }
        released
    }

    /// Socket ids with at least one core owned by any application.
    pub fn active_sockets(&self) -> Vec<SocketId> {
        let mut out: Vec<SocketId> = self
            .owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| self.topology.socket_of(CoreId(i)))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_mapping() {
        let topo = Topology::new(2, 6, 2);
        assert_eq!(topo.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(topo.socket_of(CoreId(5)), SocketId(0));
        assert_eq!(topo.socket_of(CoreId(6)), SocketId(1));
        assert_eq!(topo.socket_of(CoreId(11)), SocketId(1));
        assert_eq!(topo.local_dimm(SocketId(1)), DimmId(1));
        assert!(topo.contains_core(CoreId(11)));
        assert!(!topo.contains_core(CoreId(12)));
    }

    #[test]
    fn allocator_prefers_socket_locality() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        let a = alloc.allocate(0, 4).unwrap();
        let b = alloc.allocate(1, 4).unwrap();
        // Both fit within a single socket each.
        let sa: Vec<_> = a.iter().map(|c| alloc.topology().socket_of(*c)).collect();
        let sb: Vec<_> = b.iter().map(|c| alloc.topology().socket_of(*c)).collect();
        assert!(sa.windows(2).all(|w| w[0] == w[1]));
        assert!(sb.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(sa[0], sb[0], "apps land on different sockets");
    }

    #[test]
    fn allocator_spills_when_no_socket_fits() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        alloc.allocate(0, 4).unwrap();
        alloc.allocate(1, 4).unwrap();
        // 4 cores remain, 2 on each socket: an app of 4 must spill.
        let c = alloc.allocate(2, 4).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(alloc.free_cores(), 0);
    }

    #[test]
    fn over_allocation_errors() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        alloc.allocate(0, 10).unwrap();
        let err = alloc.allocate(1, 4).unwrap_err();
        assert_eq!(
            err,
            ServerError::InsufficientCores {
                requested: 4,
                available: 2
            }
        );
    }

    #[test]
    fn growth_prefers_resident_socket() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        // App 0 starts with 4 cores on one socket; app 1 takes 4 on the
        // other. Growing app 0 by 2 must use its own socket's free
        // cores, not fragment onto the other socket.
        alloc.allocate(0, 4).unwrap();
        alloc.allocate(1, 4).unwrap();
        alloc.allocate(0, 2).unwrap();
        let sockets: Vec<SocketId> = alloc
            .cores_of_app(0)
            .iter()
            .map(|c| alloc.topology().socket_of(*c))
            .collect();
        assert!(
            sockets.windows(2).all(|w| w[0] == w[1]),
            "app 0 fragmented: {sockets:?}"
        );
        assert_eq!(alloc.cores_of_app(0).len(), 6);
    }

    #[test]
    fn release_and_shrink() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        alloc.allocate(0, 6).unwrap();
        let released = alloc.shrink_to(0, 3);
        assert_eq!(released.len(), 3);
        assert_eq!(alloc.cores_of_app(0).len(), 3);
        assert_eq!(alloc.free_cores(), 9);
        assert_eq!(alloc.release(0), 3);
        assert_eq!(alloc.free_cores(), 12);
    }

    #[test]
    fn active_sockets_tracking() {
        let mut alloc = CoreAllocator::new(Topology::new(2, 6, 2));
        assert!(alloc.active_sockets().is_empty());
        alloc.allocate(0, 2).unwrap();
        assert_eq!(alloc.active_sockets().len(), 1);
        alloc.allocate(1, 6).unwrap();
        assert_eq!(alloc.active_sockets().len(), 2);
    }

    #[test]
    fn display_identifiers() {
        assert_eq!(SocketId(1).to_string(), "socket1");
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(DimmId(0).to_string(), "dimm0");
    }
}
