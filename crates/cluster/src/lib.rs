//! Cluster-scale power management (the paper's Sec. IV-D).
//!
//! A cluster of shared servers performs **peak shaving**: the cluster's
//! power cap follows a demand trace with 15/30/45% of the peak shaved
//! off (Fig. 12a), and the cluster manager must keep aggregate
//! application performance high within it (Fig. 12b). Three strategies
//! are compared:
//!
//! * **Equal(RAPL)** — the cap is split evenly across servers; each
//!   server enforces its share with RAPL-style utility-unaware capping
//!   (today's state of the art, e.g. Facebook's Dynamo);
//! * **Equal(Ours)** — the same even split, but each server mediates its
//!   power struggle with the `App+Res+ESD-Aware` policy, engaging its
//!   battery only under very stringent caps;
//! * **Consolidation+Migration(no cap)** — power only as many servers as
//!   the budget allows, migrate applications onto them, and cap nothing.
//!
//! The capping strategies run on an explicit **control plane**
//! ([`control`]): the manager sends cap-assignment downlinks to one
//! agent per server ([`agent`]), agents report telemetry uplinks back,
//! and the message layer in between can inject deterministic, seeded
//! faults — drops, delays, node churn, partitions, manager failover —
//! to measure how gracefully the cluster tier degrades. With faults
//! disabled the control plane reproduces the original monolithic loops
//! bit-for-bit.
//!
//! # Example
//!
//! ```no_run
//! use powermed_cluster::trace::ClusterPowerTrace;
//! use powermed_cluster::manager::{ClusterManager, ClusterPolicy};
//! use powermed_units::{Ratio, Seconds};
//!
//! let trace = ClusterPowerTrace::synthetic_diurnal(10, Seconds::new(240.0), 42)
//!     .peak_shaved(Ratio::new(0.30));
//! let report = ClusterManager::new(10, 7)
//!     .run(ClusterPolicy::EqualOurs, &trace, Seconds::new(0.5));
//! assert!(report.aggregate_normalized_perf > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod control;
pub mod fleet;
pub mod manager;
pub mod trace;

pub use agent::{AgentConfig, ServerAgent};
pub use control::{
    ClusterFaultConfig, ControlOptions, ControlPlane, FleetObsOptions, FleetObsReport,
    ManagedPolicy, ManagerConfig, PartitionWindow, ResilienceReport,
};
pub use manager::{ClusterManager, ClusterPolicy, ClusterReport};
pub use trace::ClusterPowerTrace;
