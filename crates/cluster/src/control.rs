//! The cluster control plane: a deterministic, seeded message layer
//! between the cluster manager and its per-server agents, with
//! injectable faults and a resilient manager that degrades gracefully.
//!
//! The monolithic per-policy loops of [`ClusterManager`] are split into
//! explicit messages: the manager sends [`Downlink`] cap assignments and
//! heartbeats; every agent sends a [`Uplink`] telemetry report each
//! control step. The [`ControlPlane`] in between can drop, delay (and
//! thereby reorder) either direction, crash whole nodes, partition a
//! server away from the manager, and kill the manager itself for a
//! takeover window — all driven by per-channel splitmix64 streams
//! ([`powermed_sim::faults::channel_stream`]) so the same seed replays
//! the same fault history bit-for-bit and flavors can be compared under
//! common random numbers.
//!
//! Resilience is a flavor switch, not a different topology. The
//! **resilient** manager heartbeats current assignments (repairing
//! drops), checkpoints its apportionment state, restores it on failover,
//! declares nodes dead on missed telemetry and reapportions their share
//! across survivors (returning it on rejoin); resilient agents gate
//! assignments by epoch and fall back to a conservative decaying local
//! cap when partitioned (see [`crate::agent`]). The **naive** manager is
//! today's monolithic loop made honest about the network: fire-and-forget
//! assignments, no heartbeats, no liveness tracking, a cold-restart
//! standby. With faults disabled both flavors reproduce the monolithic
//! loops bit-for-bit — the zero-cost-off contract.

use powermed_core::cache::MeasurementCache;
use powermed_core::coordinator::EsdParams;
use powermed_core::policy::{PolicyKind, PowerPolicy};
use powermed_disagg::EstimatorConfig;
use powermed_profiles::{ProbeSplit, ProfileDigest, ProfileStore, StoreConfig};
use powermed_server::ServerSpec;
use powermed_telemetry::faults::ClusterControlStats;
use powermed_telemetry::journal::{
    FleetTimeline, JournalDigest, Obs, ObsConfig, ObsEvent, MANAGER_SERVER_ID,
};
use powermed_telemetry::metrics::{prom_label, MetricsRegistry};
use powermed_telemetry::recorder::TraceRecorder;
use powermed_telemetry::ProfileStoreStats;
use powermed_units::{Joules, Ratio, Seconds, Watts};
use powermed_workloads::mixes::Mix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::agent::{AgentConfig, ServerAgent};
use crate::manager::{ClusterManager, ClusterPolicy, ClusterReport};
use crate::trace::ClusterPowerTrace;

/// A cap assignment (or heartbeat) from the manager to one server.
#[derive(Debug, Clone, PartialEq)]
pub struct Downlink {
    /// Assignment epoch: strictly increasing across reapportionments,
    /// derived from the control step so it survives manager failover.
    pub epoch: u64,
    /// The per-server cap assigned at that epoch.
    pub cap: Watts,
    /// Re-send of already-assigned state (heartbeat, failover or
    /// membership re-broadcast) rather than a fresh budget-change
    /// assignment. A settled resilient agent acknowledges a repair whose
    /// cap it already enforces without re-actuating — re-planning is not
    /// free, and a repair carrying the value in force has nothing to fix.
    pub repair: bool,
    /// Knowledge-plane payload: the manager's profile digests, merged
    /// into the agent's store on receipt (empty when warm start is off).
    /// Digests are a semilattice, so stale or reordered deliveries are
    /// harmless — merge is commutative and idempotent.
    pub profiles: Vec<ProfileDigest>,
    /// Flight-recorder ack watermark: the manager has merged this
    /// server's journal records below this sequence number into the
    /// fleet timeline, so the agent's next digest starts here. Always 0
    /// when fleet recording is off, keeping the classic control plane
    /// bit-identical.
    pub journal_acked: u64,
}

impl Downlink {
    /// A bare assignment with no knowledge-plane payload.
    pub fn assignment(epoch: u64, cap: Watts, repair: bool) -> Self {
        Self {
            epoch,
            cap,
            repair,
            profiles: Vec::new(),
            journal_acked: 0,
        }
    }
}

/// A telemetry report from one server to the manager.
#[derive(Debug, Clone, PartialEq)]
pub struct Uplink {
    /// Reporting server index.
    pub server: usize,
    /// Control step the report was sent (stale reports carry old steps).
    pub sent_step: u64,
    /// Net (post-ESD) power the server drew that step.
    pub net_power: Watts,
    /// Knowledge-plane payload: profile digests this server published
    /// since its last report (empty when warm start is off).
    pub profiles: Vec<ProfileDigest>,
    /// Estimated per-app dynamic shares in watts, from the server's
    /// non-intrusive disaggregation layer — what a real deployment can
    /// actually report upstream, since no per-app power meter exists.
    /// Empty when estimation is off ([`ControlOptions::estimation`] is
    /// `None`), keeping the classic control plane bit-identical.
    pub app_shares: Vec<(String, f64)>,
    /// Flight-recorder payload: the server's journal delta since the
    /// last acked sequence number, size-capped so it survives lossy
    /// links. Re-shipped every wave until acked — the fleet merge is
    /// idempotent, so duplication under retry is free. `None` when
    /// fleet recording is off.
    pub journal: Option<JournalDigest>,
}

impl Uplink {
    /// A bare telemetry report with no knowledge-plane payload.
    pub fn report(server: usize, sent_step: u64, net_power: Watts) -> Self {
        Self {
            server,
            sent_step,
            net_power,
            profiles: Vec::new(),
            app_shares: Vec::new(),
            journal: None,
        }
    }
}

/// One server's scheduled partition from the manager: both directions of
/// its channel are cut for `from_step <= step < until_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// The partitioned server.
    pub server: usize,
    /// First step of the partition (inclusive).
    pub from_step: u64,
    /// End of the partition (exclusive).
    pub until_step: u64,
}

impl PartitionWindow {
    fn covers(&self, server: usize, step: u64) -> bool {
        self.server == server && (self.from_step..self.until_step).contains(&step)
    }
}

/// Fault injection configuration for the cluster control plane.
///
/// All probabilities are per message (drops) or per node per step
/// (crashes). Channels only consume random numbers for faults whose
/// knob is non-zero, so flavors compared under the same seed see the
/// same fault history (common random numbers) and a fully zeroed config
/// consumes no randomness at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterFaultConfig {
    /// Seed for every per-channel splitmix64 stream.
    pub seed: u64,
    /// Probability a manager → server message is dropped in flight.
    pub downlink_drop_prob: f64,
    /// Maximum delivery delay of a downlink, in control steps (uniform
    /// over `0..=max`; a positive draw reorders against later sends).
    pub downlink_delay_max_steps: u64,
    /// Probability a server → manager report is dropped in flight.
    pub uplink_drop_prob: f64,
    /// Maximum delivery delay of an uplink, in control steps.
    pub uplink_delay_max_steps: u64,
    /// Per-node per-step probability of a whole-node crash.
    pub node_crash_prob: f64,
    /// Steps a crashed node stays down before it restarts.
    pub node_down_steps: u64,
    /// Scheduled network partitions (node up, channel cut).
    pub partitions: Vec<PartitionWindow>,
    /// Step at which the manager crashes, if any.
    pub manager_crash_step: Option<u64>,
    /// Steps until the standby manager takes over after the crash.
    pub manager_takeover_steps: u64,
}

impl ClusterFaultConfig {
    /// A fault-free control plane (the zero-cost-off configuration).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            downlink_drop_prob: 0.0,
            downlink_delay_max_steps: 0,
            uplink_drop_prob: 0.0,
            uplink_delay_max_steps: 0,
            node_crash_prob: 0.0,
            node_down_steps: 0,
            partitions: Vec::new(),
            manager_crash_step: None,
            manager_takeover_steps: 0,
        }
    }

    /// The reference node-churn + message-loss scenario: 10% loss and up
    /// to 2 steps of delay on both directions, plus Poisson-like node
    /// crashes (0.1% per node-step) with 20-step outages.
    pub fn default_scenario(seed: u64) -> Self {
        Self {
            downlink_drop_prob: 0.10,
            downlink_delay_max_steps: 2,
            uplink_drop_prob: 0.10,
            uplink_delay_max_steps: 2,
            node_crash_prob: 0.001,
            node_down_steps: 40,
            ..Self::none(seed)
        }
    }

    fn has_downlink_faults(&self) -> bool {
        self.downlink_drop_prob > 0.0 || self.downlink_delay_max_steps > 0
    }

    fn has_uplink_faults(&self) -> bool {
        self.uplink_drop_prob > 0.0 || self.uplink_delay_max_steps > 0
    }
}

/// One event in the deterministic fault/response history of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterFaultEvent {
    /// A downlink to `server` was dropped.
    DownlinkDropped {
        /// Destination server.
        server: usize,
    },
    /// A downlink to `server` was delayed by `steps`.
    DownlinkDelayed {
        /// Destination server.
        server: usize,
        /// Delivery delay in control steps.
        steps: u64,
    },
    /// An uplink from `server` was dropped.
    UplinkDropped {
        /// Source server.
        server: usize,
    },
    /// An uplink from `server` was delayed by `steps`.
    UplinkDelayed {
        /// Source server.
        server: usize,
        /// Delivery delay in control steps.
        steps: u64,
    },
    /// A message died because its endpoint (node or manager) was down or
    /// the channel was partitioned.
    EndpointLoss {
        /// The server side of the lost message.
        server: usize,
    },
    /// Node `server` crashed (apps restart, ESD state resets).
    NodeCrash {
        /// The crashed server.
        server: usize,
    },
    /// Node `server` restarted and rejoined the fleet.
    NodeRestart {
        /// The restarted server.
        server: usize,
    },
    /// The manager crashed; the control plane is headless until takeover.
    ManagerCrash,
    /// The standby manager took over.
    ManagerTakeover,
}

/// A timestamped [`ClusterFaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterFaultRecord {
    /// Control step the event occurred at.
    pub step: u64,
    /// The event.
    pub event: ClusterFaultEvent,
}

/// FNV-1a digest of a fault history — the determinism fingerprint used
/// by the `ext_cluster_faults --smoke` CI check.
pub fn fault_trace_digest(records: &[ClusterFaultRecord]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for record in records {
        for byte in format!("{record:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// An in-flight message and the step it becomes deliverable.
#[derive(Debug, Clone)]
struct InFlight<T> {
    deliver_at: u64,
    msg: T,
}

/// Splits `queue` into the messages due at `step` (send-order preserved)
/// and the still-in-flight remainder, writing the remainder back.
fn drain_due<T>(queue: &mut Vec<InFlight<T>>, step: u64) -> Vec<InFlight<T>> {
    let mut due = Vec::new();
    let mut pending = Vec::new();
    for m in std::mem::take(queue) {
        if m.deliver_at <= step {
            due.push(m);
        } else {
            pending.push(m);
        }
    }
    *queue = pending;
    due
}

/// The seeded, fault-injectable message layer between manager and agents.
#[derive(Debug)]
pub struct ControlPlane {
    config: ClusterFaultConfig,
    servers: usize,
    step: u64,
    down_rngs: Vec<StdRng>,
    up_rngs: Vec<StdRng>,
    churn_rngs: Vec<StdRng>,
    downlinks: Vec<Vec<InFlight<Downlink>>>,
    uplinks: Vec<InFlight<Uplink>>,
    /// `Some(step)` while a node is down: it restarts at that step.
    down_until: Vec<Option<u64>>,
    stats: ClusterControlStats,
    records: Vec<ClusterFaultRecord>,
    /// Flight-recorder handle; every fault record and message send is
    /// mirrored into its journal. `None` (the default) is zero-cost.
    obs: Option<Obs>,
    /// Wall-clock length of one control step, for journal timestamps.
    obs_dt: Seconds,
}

impl ControlPlane {
    /// A control plane over `servers` channels under `config`.
    pub fn new(config: ClusterFaultConfig, servers: usize) -> Self {
        let stream = |tag: u64, i: usize| {
            powermed_sim::faults::channel_stream(config.seed, tag ^ ((i as u64) << 8))
        };
        Self {
            down_rngs: (0..servers).map(|i| stream(0xD0_01, i)).collect(),
            up_rngs: (0..servers).map(|i| stream(0x0D_02, i)).collect(),
            churn_rngs: (0..servers).map(|i| stream(0xC4_03, i)).collect(),
            downlinks: vec![Vec::new(); servers],
            uplinks: Vec::new(),
            down_until: vec![None; servers],
            stats: ClusterControlStats::default(),
            records: Vec::new(),
            obs: None,
            obs_dt: Seconds::new(1.0),
            config,
            servers,
            step: 0,
        }
    }

    /// Attaches a flight-recorder handle. Fault records and message
    /// sends are journalled from then on, timestamped `step * dt`.
    pub fn set_observability(&mut self, obs: Obs, dt: Seconds) {
        self.obs = Some(obs);
        self.obs_dt = dt;
    }

    /// The attached flight-recorder handle, if any.
    pub fn observability(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// Journal timestamp for the current control step.
    fn obs_now(&self) -> Seconds {
        Seconds::new(self.step as f64 * self.obs_dt.value())
    }

    /// Advances the plane to `step` and records scheduled manager events.
    pub fn begin_step(&mut self, step: u64) {
        self.step = step;
        if let Some(crash) = self.config.manager_crash_step {
            if step == crash {
                self.record(ClusterFaultEvent::ManagerCrash);
            }
            if step == crash + self.config.manager_takeover_steps {
                self.record(ClusterFaultEvent::ManagerTakeover);
            }
        }
    }

    fn record(&mut self, event: ClusterFaultEvent) {
        if let Some(obs) = self.obs.as_ref() {
            let mirrored = match event {
                ClusterFaultEvent::DownlinkDropped { server } => ObsEvent::LinkDropped {
                    server,
                    uplink: false,
                },
                ClusterFaultEvent::DownlinkDelayed { server, steps } => ObsEvent::LinkDelayed {
                    server,
                    uplink: false,
                    steps,
                },
                ClusterFaultEvent::UplinkDropped { server } => ObsEvent::LinkDropped {
                    server,
                    uplink: true,
                },
                ClusterFaultEvent::UplinkDelayed { server, steps } => ObsEvent::LinkDelayed {
                    server,
                    uplink: true,
                    steps,
                },
                ClusterFaultEvent::EndpointLoss { server } => ObsEvent::EndpointLoss { server },
                ClusterFaultEvent::NodeCrash { server } => ObsEvent::NodeCrash { server },
                ClusterFaultEvent::NodeRestart { server } => ObsEvent::NodeRestart { server },
                ClusterFaultEvent::ManagerCrash => ObsEvent::ManagerCrash,
                ClusterFaultEvent::ManagerTakeover => ObsEvent::ManagerTakeover,
            };
            obs.emit(self.obs_now(), mirrored);
        }
        self.records.push(ClusterFaultRecord {
            step: self.step,
            event,
        });
    }

    /// Whether node `i` is currently up.
    pub fn node_up(&self, i: usize) -> bool {
        self.down_until[i].is_none()
    }

    /// Whether the channel to node `i` is partitioned this step.
    pub fn partitioned(&self, i: usize) -> bool {
        self.config
            .partitions
            .iter()
            .any(|w| w.covers(i, self.step))
    }

    /// Whether the (primary or standby) manager is running this step.
    pub fn manager_up(&self) -> bool {
        match self.config.manager_crash_step {
            Some(crash) => {
                self.step < crash || self.step >= crash + self.config.manager_takeover_steps
            }
            None => true,
        }
    }

    /// Whether the standby takes over exactly this step (restore point).
    pub fn manager_takeover_now(&self) -> bool {
        self.config
            .manager_crash_step
            .is_some_and(|crash| self.step == crash + self.config.manager_takeover_steps)
    }

    /// Rolls node churn for node `i` (call once per step for an up
    /// node). On a crash the node goes down for the configured outage
    /// and everything queued toward it dies with it.
    pub fn roll_crash(&mut self, i: usize) -> bool {
        if self.config.node_crash_prob <= 0.0 {
            return false;
        }
        if self.churn_rngs[i].gen_range(0.0..1.0) >= self.config.node_crash_prob {
            return false;
        }
        self.down_until[i] = Some(self.step + self.config.node_down_steps.max(1));
        self.stats.node_crashes += 1;
        self.record(ClusterFaultEvent::NodeCrash { server: i });
        let lost = self.downlinks[i].len() as u64;
        if lost > 0 {
            self.stats.messages_lost_endpoint_down += lost;
            self.record(ClusterFaultEvent::EndpointLoss { server: i });
            self.downlinks[i].clear();
        }
        true
    }

    /// Whether node `i`'s outage ends this step (call once per step for
    /// a down node; clears the outage and records the restart).
    pub fn restart_due(&mut self, i: usize) -> bool {
        match self.down_until[i] {
            Some(until) if self.step >= until => {
                self.down_until[i] = None;
                self.stats.node_restarts += 1;
                self.record(ClusterFaultEvent::NodeRestart { server: i });
                true
            }
            _ => false,
        }
    }

    /// Sends a downlink to node `i`, subject to partition, drop, and
    /// delay faults. Messages to a down node die at the sender.
    pub fn send_down(&mut self, i: usize, msg: Downlink) {
        if !self.node_up(i) || self.partitioned(i) {
            self.stats.messages_lost_endpoint_down += 1;
            self.record(ClusterFaultEvent::EndpointLoss { server: i });
            return;
        }
        let mut delay = 0u64;
        if self.config.has_downlink_faults() {
            if self.config.downlink_drop_prob > 0.0
                && self.down_rngs[i].gen_range(0.0..1.0) < self.config.downlink_drop_prob
            {
                self.stats.downlinks_dropped += 1;
                self.record(ClusterFaultEvent::DownlinkDropped { server: i });
                return;
            }
            if self.config.downlink_delay_max_steps > 0 {
                delay = self.down_rngs[i].gen_range(0..=self.config.downlink_delay_max_steps);
                if delay > 0 {
                    self.stats.downlinks_delayed += 1;
                    self.record(ClusterFaultEvent::DownlinkDelayed {
                        server: i,
                        steps: delay,
                    });
                }
            }
        }
        if let Some(obs) = self.obs.as_ref() {
            obs.emit(
                self.obs_now(),
                ObsEvent::DownlinkSent {
                    server: i,
                    epoch: msg.epoch,
                    cap_w: msg.cap.value(),
                    repair: msg.repair,
                },
            );
        }
        self.downlinks[i].push(InFlight {
            deliver_at: self.step + delay,
            msg,
        });
    }

    /// Sends node `i`'s telemetry report toward the manager, subject to
    /// partition, drop, and delay faults.
    pub fn send_up(&mut self, i: usize, msg: Uplink) {
        if self.partitioned(i) {
            self.stats.messages_lost_endpoint_down += 1;
            self.record(ClusterFaultEvent::EndpointLoss { server: i });
            return;
        }
        let mut delay = 0u64;
        if self.config.has_uplink_faults() {
            if self.config.uplink_drop_prob > 0.0
                && self.up_rngs[i].gen_range(0.0..1.0) < self.config.uplink_drop_prob
            {
                self.stats.uplinks_dropped += 1;
                self.record(ClusterFaultEvent::UplinkDropped { server: i });
                return;
            }
            if self.config.uplink_delay_max_steps > 0 {
                delay = self.up_rngs[i].gen_range(0..=self.config.uplink_delay_max_steps);
                if delay > 0 {
                    self.stats.uplinks_delayed += 1;
                    self.record(ClusterFaultEvent::UplinkDelayed {
                        server: i,
                        steps: delay,
                    });
                }
            }
        }
        if let Some(obs) = self.obs.as_ref() {
            obs.emit(
                self.obs_now(),
                ObsEvent::UplinkSent {
                    server: i,
                    step: msg.sent_step,
                },
            );
        }
        // Uplinks become deliverable the step after they were sent (the
        // manager runs before the servers within a step), plus any delay.
        self.uplinks.push(InFlight {
            deliver_at: self.step + 1 + delay,
            msg,
        });
    }

    /// Delivers the downlinks due at node `i`, oldest delivery first
    /// (delays reorder against later sends).
    pub fn poll_down(&mut self, i: usize) -> Vec<Downlink> {
        let mut due = drain_due(&mut self.downlinks[i], self.step);
        due.sort_by_key(|m| m.deliver_at);
        due.into_iter().map(|m| m.msg).collect()
    }

    /// Delivers the uplinks due at the manager, oldest delivery first,
    /// then by server index within a step.
    pub fn poll_up(&mut self) -> Vec<Uplink> {
        let mut due = drain_due(&mut self.uplinks, self.step);
        due.sort_by_key(|m| m.deliver_at);
        due.into_iter().map(|m| m.msg).collect()
    }

    /// Discards everything due this step because its receiving endpoint
    /// is dead (a down node's downlinks, a headless manager's uplinks).
    pub fn discard_due_downlinks(&mut self, i: usize) {
        let lost = self.poll_down(i).len() as u64;
        if lost > 0 {
            self.stats.messages_lost_endpoint_down += lost;
            self.record(ClusterFaultEvent::EndpointLoss { server: i });
        }
    }

    /// Discards the uplinks due at a dead manager.
    pub fn discard_due_uplinks(&mut self) {
        for up in self.poll_up() {
            self.stats.messages_lost_endpoint_down += 1;
            self.record(ClusterFaultEvent::EndpointLoss { server: up.server });
        }
    }

    /// Message-layer fault counters accumulated so far.
    pub fn stats(&self) -> ClusterControlStats {
        self.stats
    }

    /// The deterministic fault history.
    pub fn records(&self) -> &[ClusterFaultRecord] {
        self.records.as_slice()
    }

    /// Number of channels.
    pub fn servers(&self) -> usize {
        self.servers
    }
}

/// How the manager splits the cluster budget across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Apportionment {
    /// Even split across alive servers.
    Equal,
    /// Utility-curve DP split ([`ClusterManager::apportion_cluster`]).
    UtilityDp,
}

/// A cluster policy expressed for the managed control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagedPolicy {
    /// Report label.
    pub label: ClusterPolicy,
    /// Per-server mediation policy.
    pub kind: PolicyKind,
    /// Whether servers carry the Lead-Acid UPS.
    pub with_battery: bool,
    /// Budget apportionment strategy.
    pub apportionment: Apportionment,
}

impl ManagedPolicy {
    /// Equal split enforced by utility-unaware RAPL capping.
    pub fn equal_rapl() -> Self {
        Self {
            label: ClusterPolicy::EqualRapl,
            kind: PolicyKind::UtilUnaware,
            with_battery: false,
            apportionment: Apportionment::Equal,
        }
    }

    /// Equal split with `App+Res+ESD-Aware` mediation per server.
    pub fn equal_ours() -> Self {
        Self {
            label: ClusterPolicy::EqualOurs,
            kind: PolicyKind::AppResEsdAware,
            with_battery: true,
            apportionment: Apportionment::Equal,
        }
    }

    /// Utility-curve apportionment with `App+Res+ESD-Aware` mediation.
    pub fn unequal_ours() -> Self {
        Self {
            label: ClusterPolicy::UnequalOurs,
            kind: PolicyKind::AppResEsdAware,
            with_battery: true,
            apportionment: Apportionment::UtilityDp,
        }
    }
}

/// Tuning of the resilient manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Steps between heartbeats (each re-sends the current assignment,
    /// so a dropped assignment is repaired within one interval).
    pub heartbeat_interval_steps: u64,
    /// Steps of telemetry silence before a node is declared dead.
    pub dead_after_steps: u64,
    /// Steps between checkpoints of the apportionment state.
    pub checkpoint_interval_steps: u64,
    /// Steps a node must stay dead before its share is redistributed to
    /// the survivors. Redistribution re-plans every survivor, which
    /// costs real throughput, so short churn outages are ridden out by
    /// banking the dead node's headroom (strictly under budget) and
    /// only a sustained loss — a partition, a long outage — is worth
    /// re-cutting the pie for.
    pub reapportion_after_steps: u64,
    /// Idle-floor share reserved for a dead (or partitioned) node, so
    /// reapportioning survivors can never push the fleet over budget
    /// while the missing node decays toward the same floor.
    pub floor: Watts,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval_steps: 4,
            dead_after_steps: 30,
            checkpoint_interval_steps: 20,
            reapportion_after_steps: 60,
            floor: Watts::new(50.0),
        }
    }
}

/// The manager's replicated apportionment state (what checkpoints carry).
#[derive(Debug, Clone)]
struct ManagerState {
    epoch: u64,
    caps: Vec<Watts>,
    /// Change detector: Equal stores the last per-server share,
    /// UtilityDp the last total budget.
    last_key: Watts,
    alive: Vec<bool>,
    /// Step at which each currently-dead node was declared dead.
    dead_since: Vec<Option<u64>>,
    /// Nodes whose share has been redistributed to the survivors (dead
    /// past [`ManagerConfig::reapportion_after_steps`]). Freshly-dead
    /// nodes keep their assigned share — they draw nothing while down,
    /// so the fleet simply runs under budget until they return or the
    /// redistribution threshold passes.
    excluded: Vec<bool>,
    last_uplink_step: Vec<u64>,
}

impl ManagerState {
    fn initial(servers: usize, initial_share: Watts, apportionment: Apportionment) -> Self {
        Self {
            epoch: 0,
            caps: vec![initial_share; servers],
            last_key: match apportionment {
                // Mirrors the monolithic loops: the equal loop does not
                // re-send the boot share at step 0, the DP loop always
                // apportions at step 0.
                Apportionment::Equal => initial_share,
                Apportionment::UtilityDp => Watts::ZERO,
            },
            alive: vec![true; servers],
            dead_since: vec![None; servers],
            excluded: vec![false; servers],
            last_uplink_step: vec![0; servers],
        }
    }
}

/// The manager-side half of the fleet flight recorder: the merged
/// timeline, per-server ack watermarks, and the manager's own journal
/// fold position, checkpointed alongside the apportionment state so a
/// resilient standby resumes the timeline on takeover.
struct ManagerFleet {
    /// The manager's own flight recorder: mirrored control-plane fault
    /// events plus fleet-level decisions (breaker arm/trip/clamp) land
    /// here, then fold into the timeline under [`MANAGER_SERVER_ID`].
    obs: Obs,
    timeline: FleetTimeline,
    /// Per-server ack watermark: first journal seq not yet merged.
    /// Ridden back to each agent on every downlink wave.
    acked: Vec<u64>,
    /// First of the manager's own journal records not yet folded.
    own_shipped: u64,
    /// Digests whose ring wrapped past unshipped records (each carries
    /// a `DigestGap` marker in the timeline).
    digest_gaps: u64,
    checkpoint: Option<FleetCheckpoint>,
}

/// What a fleet-timeline checkpoint carries across manager failover.
#[derive(Clone)]
struct FleetCheckpoint {
    timeline: FleetTimeline,
    acked: Vec<u64>,
    own_shipped: u64,
}

impl ManagerFleet {
    fn new(obs: Obs, servers: usize) -> Self {
        Self {
            obs,
            timeline: FleetTimeline::new(),
            acked: vec![0; servers],
            own_shipped: 0,
            digest_gaps: 0,
            checkpoint: None,
        }
    }

    /// Folds the manager's own journal delta into the timeline under
    /// [`MANAGER_SERVER_ID`]. Goes through the same digest path as the
    /// uplinked deltas so a wrapped manager ring leaves a `DigestGap`
    /// instead of a silent hole (no byte cap: the fold is local).
    fn fold_own_journal(&mut self) {
        let digest = self
            .obs
            .digest_since(MANAGER_SERVER_ID, self.own_shipped, usize::MAX);
        if digest.is_empty() {
            return;
        }
        if digest.wrapped {
            self.digest_gaps += 1;
        }
        self.timeline.merge_digest(&digest);
        self.own_shipped = digest.ack_to();
    }

    /// Merges one uplinked digest, advances the sender's ack watermark,
    /// and bumps the fleet-level metrics.
    fn fold_uplink(&mut self, server: usize, digest: &JournalDigest) {
        if digest.wrapped {
            self.digest_gaps += 1;
            self.obs.inc("digest_gaps_total");
        }
        let before = self.timeline.dedup_total();
        self.timeline.merge_digest(digest);
        let acked = &mut self.acked[server];
        *acked = (*acked).max(digest.ack_to());
        self.obs.inc_by("digest_bytes_total", digest.bytes);
        self.obs
            .inc_by("merge_dedup_total", self.timeline.dedup_total() - before);
        self.obs
            .set_gauge("timeline_len", self.timeline.len() as f64);
    }

    /// Publishes the per-server ack watermarks as labelled gauges.
    fn publish_ack_gauges(&self) {
        for (i, acked) in self.acked.iter().enumerate() {
            let server = i.to_string();
            let name = prom_label("last_acked_seq", &[("server", server.as_str())]);
            self.obs.set_gauge(&name, *acked as f64);
        }
    }
}

/// The cluster manager as a control-plane node.
struct Manager {
    resilient: bool,
    config: ManagerConfig,
    apportionment: Apportionment,
    curves: Option<Vec<Vec<(Watts, f64)>>>,
    servers: usize,
    initial_share: Watts,
    state: ManagerState,
    checkpoint: Option<ManagerState>,
    /// Fleet knowledge plane: the manager's replica of every published
    /// profile, rebroadcast to the agents with each downlink wave.
    store: Option<ProfileStore>,
    /// JSON snapshot of the store taken with each state checkpoint, so
    /// the resilient standby restores fleet knowledge on takeover.
    store_checkpoint: Option<String>,
    /// Fleet flight recorder (`None` when fleet recording is off).
    fleet: Option<ManagerFleet>,
    membership_dirty: bool,
    failovers: u64,
    checkpoints: u64,
    dead_declarations: u64,
    rejoins: u64,
    reapportionments: u64,
}

impl Manager {
    fn new(
        servers: usize,
        initial_share: Watts,
        apportionment: Apportionment,
        curves: Option<Vec<Vec<(Watts, f64)>>>,
        resilient: bool,
        config: ManagerConfig,
        store: Option<ProfileStore>,
    ) -> Self {
        Self {
            state: ManagerState::initial(servers, initial_share, apportionment),
            checkpoint: None,
            store,
            store_checkpoint: None,
            fleet: None,
            membership_dirty: false,
            failovers: 0,
            checkpoints: 0,
            dead_declarations: 0,
            rejoins: 0,
            reapportionments: 0,
            resilient,
            config,
            apportionment,
            curves,
            servers,
            initial_share,
        }
    }

    /// Standby takeover: the resilient standby restores the latest
    /// checkpoint and forces a fresh-epoch reapportionment; the naive
    /// standby cold-restarts from the boot state.
    fn failover(&mut self, step: u64) {
        self.failovers += 1;
        self.state = if self.resilient {
            self.checkpoint.clone().unwrap_or_else(|| {
                ManagerState::initial(self.servers, self.initial_share, self.apportionment)
            })
        } else {
            ManagerState::initial(self.servers, self.initial_share, self.apportionment)
        };
        if let Some(store) = self.store.as_mut() {
            // The standby's knowledge plane: the resilient flavor
            // restores the checkpointed snapshot (and re-learns anything
            // newer from subsequent uplinks); the naive flavor boots an
            // empty store and must recollect the whole fleet's profiles.
            let config = store.config();
            *store = self
                .store_checkpoint
                .as_deref()
                .filter(|_| self.resilient)
                .and_then(ProfileStore::from_json)
                .unwrap_or_else(|| ProfileStore::new(config));
        }
        // The fleet timeline lives (or dies) with the apportionment
        // state: the resilient standby resumes from the checkpointed
        // timeline and ack watermarks — rewound acks just trigger
        // harmless re-ships that the idempotent merge dedups — while
        // the naive standby starts empty with zeroed watermarks, so
        // every agent re-ships its whole retained ring. Either way the
        // manager's own fold position rewinds with the timeline, and
        // the idempotent re-fold repopulates whatever survived.
        if let Some(fleet) = self.fleet.as_mut() {
            match fleet.checkpoint.clone().filter(|_| self.resilient) {
                Some(cp) => {
                    fleet.timeline = cp.timeline;
                    fleet.acked = cp.acked;
                    fleet.own_shipped = cp.own_shipped;
                }
                None => {
                    fleet.timeline = FleetTimeline::new();
                    fleet.acked = vec![0; self.servers];
                    fleet.own_shipped = 0;
                }
            }
            fleet.obs.inc("timeline_failovers_total");
        }
        // Telemetry gathered before the crash is gone either way; grant
        // a fresh grace period so takeover does not mass-declare death.
        for t in &mut self.state.last_uplink_step {
            *t = step;
        }
        // Cold-restarted naive managers re-send by resetting the change
        // detector; the resilient one reapportions at a fresh epoch.
        if self.resilient {
            self.membership_dirty = true;
        } else {
            self.state.last_key = Watts::ZERO;
        }
    }

    /// One manager step: drain telemetry, track liveness, reapportion on
    /// budget or membership change, heartbeat, checkpoint.
    fn tick(&mut self, step: u64, total: Watts, plane: &mut ControlPlane) {
        if let Some(store) = self.store.as_mut() {
            store.set_epoch(step);
        }
        if let Some(fleet) = self.fleet.as_ref() {
            fleet.obs.set_epoch(self.state.epoch);
        }
        for up in plane.poll_up() {
            if let (Some(store), false) = (self.store.as_mut(), up.profiles.is_empty()) {
                store.merge_digests(&up.profiles);
            }
            if let (Some(fleet), Some(digest)) = (self.fleet.as_mut(), up.journal.as_ref()) {
                fleet.fold_uplink(up.server, digest);
            }
            if self.resilient && !self.state.alive[up.server] {
                self.state.alive[up.server] = true;
                self.state.dead_since[up.server] = None;
                self.rejoins += 1;
                if self.state.excluded[up.server] {
                    // Its share was redistributed; hand it back.
                    self.state.excluded[up.server] = false;
                    self.membership_dirty = true;
                }
            }
            let seen = &mut self.state.last_uplink_step[up.server];
            *seen = (*seen).max(up.sent_step);
        }
        if self.resilient {
            for i in 0..self.servers {
                if self.state.alive[i]
                    && step.saturating_sub(self.state.last_uplink_step[i])
                        > self.config.dead_after_steps
                {
                    self.state.alive[i] = false;
                    self.state.dead_since[i] = Some(step);
                    self.dead_declarations += 1;
                }
                if !self.state.excluded[i] {
                    if let Some(since) = self.state.dead_since[i] {
                        if step.saturating_sub(since) >= self.config.reapportion_after_steps {
                            self.state.excluded[i] = true;
                            self.membership_dirty = true;
                        }
                    }
                }
            }
        }

        let n_excluded = self.state.excluded.iter().filter(|e| **e).count();
        let n_included = self.servers - n_excluded;
        if n_included > 0 {
            let floor = self.config.floor;
            let key = match self.apportionment {
                Apportionment::Equal => (total - floor * n_excluded as f64) / n_included as f64,
                Apportionment::UtilityDp => total,
            };
            let changed = (key - self.state.last_key).abs() > Watts::new(1e-6);
            if changed || self.membership_dirty {
                let repair = !changed;
                if self.membership_dirty {
                    self.reapportionments += 1;
                    self.membership_dirty = false;
                }
                self.state.last_key = key;
                self.state.epoch = step + 1;
                if let Some(fleet) = self.fleet.as_ref() {
                    // Fresh-epoch records (the broadcast wave below)
                    // carry the new epoch in the timeline key.
                    fleet.obs.set_epoch(self.state.epoch);
                }
                self.state.caps = {
                    let _span = plane.observability().map(|o| o.span("coordination"));
                    self.apportion(total, floor)
                };
                self.broadcast(plane, repair);
            } else if self.resilient
                && self.config.heartbeat_interval_steps > 0
                && step.is_multiple_of(self.config.heartbeat_interval_steps)
            {
                self.broadcast(plane, true);
            }
        }

        // Fold the manager's own journal (plane fault mirrors, breaker
        // decisions) into the timeline every tick, so the checkpoint
        // below always carries a fold position consistent with the
        // timeline it snapshots.
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.fold_own_journal();
        }

        if self.resilient
            && self.config.checkpoint_interval_steps > 0
            && step.is_multiple_of(self.config.checkpoint_interval_steps)
        {
            self.checkpoint = Some(self.state.clone());
            self.store_checkpoint = self.store.as_ref().map(ProfileStore::snapshot_json);
            if let Some(fleet) = self.fleet.as_mut() {
                fleet.checkpoint = Some(FleetCheckpoint {
                    timeline: fleet.timeline.clone(),
                    acked: fleet.acked.clone(),
                    own_shipped: fleet.own_shipped,
                });
                fleet.obs.inc("timeline_checkpoints_total");
            }
            self.checkpoints += 1;
        }
    }

    /// Splits `total` over the non-excluded set, reserving `floor` per
    /// excluded (long-dead) node — which keeps the assigned sum within
    /// budget even while a merely-partitioned "dead" node still draws
    /// its decayed fallback floor. Freshly-dead nodes are apportioned
    /// normally: they draw nothing while down, and keeping their share
    /// on the books means a quick rejoin needs no redistribution at all.
    fn apportion(&self, total: Watts, floor: Watts) -> Vec<Watts> {
        let excluded = &self.state.excluded;
        let n_excluded = excluded.iter().filter(|e| **e).count();
        let n_included = self.servers - n_excluded;
        let budget = total - floor * n_excluded as f64;
        match self.apportionment {
            Apportionment::Equal => {
                let share = budget / n_included as f64;
                excluded
                    .iter()
                    .map(|out| if *out { floor } else { share })
                    .collect()
            }
            Apportionment::UtilityDp => {
                let curves = self.curves.as_ref().expect("UtilityDp carries curves");
                let included_curves: Vec<Vec<(Watts, f64)>> = curves
                    .iter()
                    .zip(excluded)
                    .filter(|(_, out)| !**out)
                    .map(|(c, _)| c.clone())
                    .collect();
                let split = ClusterManager::apportion_cluster(&included_curves, budget);
                let mut split = split.into_iter();
                excluded
                    .iter()
                    .map(|out| {
                        if *out {
                            floor
                        } else {
                            split.next().expect("one cap per included server")
                        }
                    })
                    .collect()
            }
        }
    }

    fn broadcast(&self, plane: &mut ControlPlane, repair: bool) {
        // Every downlink wave carries the manager's full digest set:
        // merge idempotence makes the redundancy free of harm, and it is
        // what lets a healed partition catch up within one heartbeat.
        let profiles = self
            .store
            .as_ref()
            .map(ProfileStore::digests)
            .unwrap_or_default();
        for i in 0..self.servers {
            plane.send_down(
                i,
                Downlink {
                    epoch: self.state.epoch,
                    cap: self.state.caps[i],
                    repair,
                    profiles: profiles.clone(),
                    // Ack watermarks ride the existing waves: a dropped
                    // downlink just means the agent re-ships a digest
                    // the idempotent merge dedups for free.
                    journal_acked: self.fleet.as_ref().map_or(0, |f| f.acked[i]),
                },
            );
        }
    }
}

/// The facility's upstream protection circuit.
///
/// The cluster budget is a hard utility contract, not advice: a fleet
/// that keeps drawing above it gets cut off upstream. When the
/// aggregate net draw stays over budget for `trip_after_steps`
/// consecutive steps the breaker trips — every up server is slammed to
/// `floor` for `hold_steps` steps, then restored to its pre-trip cap (a
/// resilient agent additionally flags itself so the next heartbeat
/// corrects any staleness the hold concealed). Both control-plane
/// flavors face the same breaker — it is physics, not policy — and a
/// run that never violates never trips.
///
/// The breaker is opt-in: [`ControlOptions::perfect`] disables it so
/// the managed fig-12 paths stay bit-identical to the old monolithic
/// loops (utility-unaware RAPL capping overshoots transiently while it
/// actuates a budget drop, which a live breaker would punish). The
/// fault experiments enable it with the default profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive violating steps before the breaker trips. Zero
    /// disables the breaker entirely.
    pub trip_after_steps: u64,
    /// Steps the emergency floor clamp stays in force once tripped.
    pub hold_steps: u64,
    /// The clamp cap (a parked server).
    pub floor: Watts,
}

impl BreakerConfig {
    /// No facility protection: violations are recorded but never
    /// punished.
    pub fn disabled() -> Self {
        Self {
            trip_after_steps: 0,
            ..Self::default()
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after_steps: 10,
            hold_steps: 20,
            floor: Watts::new(50.0),
        }
    }
}

/// Tuning of the fleet flight recorder
/// ([`run_cluster_flight_recorded`]): every agent gets its own journal,
/// ships size-capped deltas on its uplinks, and the manager folds them
/// (plus its own journal) into a merged [`FleetTimeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetObsOptions {
    /// Per-journal configuration (ring capacity, heartbeat thresholds),
    /// shared by every server journal and the manager's.
    pub config: ObsConfig,
    /// Byte budget for one uplinked digest. A digest always carries at
    /// least one record so a backlog drains even under a tiny budget;
    /// the cap bounds bytes-on-the-wire per wave at
    /// `servers * max_digest_bytes`.
    pub max_digest_bytes: usize,
}

impl Default for FleetObsOptions {
    fn default() -> Self {
        Self {
            config: ObsConfig::default(),
            // Steady-state deltas are a handful of records (~120 bytes
            // each); 8 KiB lets a healed partition catch up within a
            // few waves without flooding the link.
            max_digest_bytes: 8192,
        }
    }
}

/// What a flight-recorded run hands back on top of the resilience
/// metrics: the merged timeline, the fleet-level metrics registry, and
/// the raw journal handles for per-server drill-down.
#[derive(Debug, Clone)]
pub struct FleetObsReport {
    /// The merged fleet timeline, keyed `(epoch, poll, server, seq)`.
    pub timeline: FleetTimeline,
    /// Manager-side fleet metrics (digest_bytes_total,
    /// merge_dedup_total, timeline_len, per-server last_acked_seq).
    pub metrics: MetricsRegistry,
    /// Digest bytes shipped on uplinks over the whole run.
    pub digest_bytes_total: u64,
    /// Largest single-step digest payload across all servers — bounded
    /// by `servers * max_digest_bytes` by construction.
    pub max_wave_bytes: u64,
    /// Digests that carried a `DigestGap` (ring wrapped past unshipped
    /// records).
    pub digest_gaps: u64,
    /// Final per-server ack watermarks.
    pub last_acked: Vec<u64>,
    /// The manager's own journal handle.
    pub manager_obs: Obs,
    /// Each server's journal handle, by server index.
    pub server_obs: Vec<Obs>,
}

/// Online-calibration and knowledge-plane configuration for a managed
/// cluster run.
///
/// `None` in [`ControlOptions::warm_start`] keeps the classic
/// exhaustive-calibration fleet, bit-identical to the pre-knowledge-plane
/// control plane. `Some` switches every server to sparse online
/// calibration; the store itself is a second opt-in so the experiment
/// can compare cold online calibration (probe on every admission)
/// against the warm fleet (consult the store first) under identical
/// probe schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartOptions {
    /// Store tuning, or `None` for the cold-start baseline (online
    /// calibration without the knowledge plane).
    pub store: Option<StoreConfig>,
    /// Sparse-sampling fraction of the knob grid per admission.
    pub sampling_fraction: f64,
    /// Forced E4 drift injections: at step `.0`, server `.1`
    /// re-calibrates its first app, tombstoning the profile fleet-wide.
    pub drift_at: Vec<(u64, usize)>,
}

impl WarmStartOptions {
    /// Store decay tuned to control-plane epochs: assignment epochs are
    /// derived from control steps (~2 per second), so the per-epoch
    /// decay must be gentle for a profile to stay confident across a
    /// multi-minute run while still aging out abandoned entries.
    pub const CLUSTER_DECAY: f64 = 0.9999;

    /// The warm fleet: online calibration plus the knowledge plane.
    pub fn warm() -> Self {
        Self {
            store: Some(StoreConfig {
                decay_per_epoch: Self::CLUSTER_DECAY,
                ..StoreConfig::default()
            }),
            sampling_fraction: 0.10,
            drift_at: Vec::new(),
        }
    }

    /// The cold baseline: identical probe schedules, no store.
    pub fn cold() -> Self {
        Self {
            store: None,
            ..Self::warm()
        }
    }
}

/// Options for a managed cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOptions {
    /// Resilient (heartbeats, checkpoints, liveness, fallback caps) or
    /// naive (fire-and-forget) flavor.
    pub resilient: bool,
    /// Fault injection configuration.
    pub faults: ClusterFaultConfig,
    /// Manager tuning.
    pub manager: ManagerConfig,
    /// Agent tuning.
    pub agent: AgentConfig,
    /// Facility protection (shared by both flavors).
    pub breaker: BreakerConfig,
    /// Online calibration + profile knowledge plane (`None` keeps the
    /// exhaustive-calibration fleet bit-identical to before).
    pub warm_start: Option<WarmStartOptions>,
    /// Non-intrusive per-app power estimation on every server: each
    /// mediator plans on disaggregated shares instead of the oracle
    /// breakdown, and uplinks carry the estimated shares. `None` (the
    /// default, and what [`ControlOptions::perfect`] uses) keeps the
    /// oracle fleet bit-identical to before.
    pub estimation: Option<EstimatorConfig>,
}

impl ControlOptions {
    /// The fault-free resilient configuration the refactored
    /// [`ClusterManager::run`] uses: bit-identical to the old monolithic
    /// loops.
    pub fn perfect(seed: u64) -> Self {
        Self {
            resilient: true,
            faults: ClusterFaultConfig::none(seed),
            manager: ManagerConfig::default(),
            agent: AgentConfig::default(),
            breaker: BreakerConfig::disabled(),
            warm_start: None,
            estimation: None,
        }
    }
}

/// Outcome of one managed cluster run: the policy report plus the
/// resilience metrics layered on top.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// The Fig. 12b-style policy report.
    pub report: ClusterReport,
    /// Seconds the fleet's aggregate net draw exceeded the budget.
    pub violation_seconds: f64,
    /// Integral of the excess above budget (watt-seconds).
    pub excess_watt_seconds: f64,
    /// Control-plane fault and response counters.
    pub stats: ClusterControlStats,
    /// Cluster-level time series (net power, budget, violation-seconds,
    /// heartbeat misses, failovers, reapportionments).
    pub recorder: TraceRecorder,
    /// FNV-1a digest of the deterministic fault history.
    pub trace_digest: u64,
    /// Fleet-wide probe accounting across every server incarnation
    /// (all-cold when warm start is off).
    pub probe_split: ProbeSplit,
    /// Fleet-wide profile-store event counters (all zero when warm
    /// start is off).
    pub store_stats: ProfileStoreStats,
    /// Entries on which the manager's store and any agent's store still
    /// disagree at run end (0 = the knowledge plane converged). `None`
    /// when the knowledge plane is off.
    pub store_divergence: Option<usize>,
    /// Fleet flight-recorder outcome (`None` unless the run came
    /// through [`run_cluster_flight_recorded`]).
    pub fleet: Option<FleetObsReport>,
}

/// Fingerprints whose profiles differ between two digest sets (an entry
/// present on only one side counts as differing).
fn digest_divergence(a: &[ProfileDigest], b: &[ProfileDigest]) -> usize {
    let index = |side: &[ProfileDigest]| -> std::collections::BTreeMap<_, _> {
        side.iter()
            .map(|d| (d.fingerprint, d.profile.clone()))
            .collect()
    };
    let ma = index(a);
    let mb = index(b);
    ma.keys()
        .chain(mb.keys())
        .filter(|fp| ma.get(*fp) != mb.get(*fp))
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

/// Per-server value curves over the candidate caps, through the shared
/// [`MeasurementCache`] so repeated cluster experiments stop
/// re-measuring identical mixes.
pub fn value_curves(spec: &ServerSpec, mixes: &[Mix]) -> Vec<Vec<(Watts, f64)>> {
    let esd = EsdParams {
        efficiency: Ratio::new(0.75),
        max_discharge: Watts::new(100.0),
        max_charge: Watts::new(50.0),
    };
    let policy = PowerPolicy::new(PolicyKind::AppResEsdAware, spec.clone());
    let cache = MeasurementCache::global();
    mixes
        .iter()
        .map(|mix| {
            let a = cache.measure(spec, &mix.app1);
            let b = cache.measure(spec, &mix.app2);
            let apps = [(mix.app1.name(), &*a), (mix.app2.name(), &*b)];
            ClusterManager::candidate_caps()
                .map(|cap| {
                    let schedule = policy.plan(&apps, cap, Some(esd));
                    (cap, schedule.expected_mean_normalized(&apps))
                })
                .collect()
        })
        .collect()
}

/// Runs `policy` over `trace` through the manager ↔ agent control plane.
///
/// Each control step proceeds in phases, all deterministic: node churn
/// (restarts, then crash rolls), the manager (takeover, telemetry drain,
/// apportionment, heartbeats, checkpoint), downlink delivery to the
/// agents, the simulation step of every up node (energy accounted in
/// server index order), telemetry uplinks, and budget scoring.
pub fn run_cluster(
    mixes: &[Mix],
    policy: ManagedPolicy,
    trace: &ClusterPowerTrace,
    dt: Seconds,
    options: &ControlOptions,
) -> ResilienceReport {
    run_cluster_observed(mixes, policy, trace, dt, options, None)
}

/// [`run_cluster`] with an optional flight-recorder handle attached to
/// the control plane and every agent's mediator and simulation. Passing
/// `None` is exactly [`run_cluster`]; the handle changes bookkeeping
/// only, never physics or policy.
pub fn run_cluster_observed(
    mixes: &[Mix],
    policy: ManagedPolicy,
    trace: &ClusterPowerTrace,
    dt: Seconds,
    options: &ControlOptions,
    obs: Option<&Obs>,
) -> ResilienceReport {
    run_cluster_inner(mixes, policy, trace, dt, options, obs, None)
}

/// [`run_cluster`] with the *fleet* flight recorder on: every server
/// journals locally and ships size-capped deltas on its uplinks, the
/// manager journals its own decisions (and the control plane's mirrored
/// fault events) and folds everything into a merged [`FleetTimeline`]
/// returned in [`ResilienceReport::fleet`]. Like the single-journal
/// mode, recording changes bookkeeping only — the physics, policy and
/// fault history stay bit-identical to [`run_cluster`].
pub fn run_cluster_flight_recorded(
    mixes: &[Mix],
    policy: ManagedPolicy,
    trace: &ClusterPowerTrace,
    dt: Seconds,
    options: &ControlOptions,
    fleet: &FleetObsOptions,
) -> ResilienceReport {
    run_cluster_inner(mixes, policy, trace, dt, options, None, Some(fleet))
}

fn run_cluster_inner(
    mixes: &[Mix],
    policy: ManagedPolicy,
    trace: &ClusterPowerTrace,
    dt: Seconds,
    options: &ControlOptions,
    obs: Option<&Obs>,
    fleet: Option<&FleetObsOptions>,
) -> ResilienceReport {
    let spec = ServerSpec::xeon_e5_2620();
    let servers = mixes.len();
    assert!(servers > 0, "cluster needs at least one server");
    let steps = (trace.duration().value() / dt.value()).ceil() as u64;
    let initial_share = trace.at(Seconds::ZERO) / servers as f64;

    let mut agents: Vec<ServerAgent> = mixes
        .iter()
        .enumerate()
        .map(|(i, mix)| {
            ServerAgent::new_with(
                &spec,
                mix,
                policy.kind,
                policy.with_battery,
                initial_share,
                options.resilient,
                options.agent,
                i as u64,
                options.warm_start.as_ref(),
            )
        })
        .collect();
    let nocap: Vec<Vec<(String, f64)>> = mixes
        .iter()
        .map(|mix| crate::fleet::nocap_rates(&spec, mix))
        .collect();
    let curves = match policy.apportionment {
        Apportionment::Equal => None,
        Apportionment::UtilityDp => Some(value_curves(&spec, mixes)),
    };

    if let Some(config) = options.estimation {
        for agent in &mut agents {
            agent.enable_estimation(config);
        }
    }
    let mut plane = ControlPlane::new(options.faults.clone(), servers);
    if let Some(obs) = obs {
        plane.set_observability(obs.clone(), dt);
        for agent in &mut agents {
            agent.set_observability(obs.clone());
        }
    }
    // Fleet recording: one journal per server, one for the manager. The
    // plane mirrors its fault events into the manager's journal (that
    // is where endpoint losses and takeovers are observed from), and
    // each agent journals into its own ring, shipped upstream as
    // digests.
    let fleet_server_obs: Option<Vec<Obs>> =
        fleet.map(|fo| (0..servers).map(|_| Obs::new(fo.config.clone())).collect());
    let fleet_manager_obs: Option<Obs> = fleet.map(|fo| Obs::new(fo.config.clone()));
    if let (Some(server_obs), Some(manager_obs)) = (&fleet_server_obs, &fleet_manager_obs) {
        plane.set_observability(manager_obs.clone(), dt);
        for (agent, o) in agents.iter_mut().zip(server_obs) {
            agent.set_observability(o.clone());
        }
    }
    let manager_store = options
        .warm_start
        .as_ref()
        .and_then(|w| w.store)
        .map(ProfileStore::new);
    let mut manager = Manager::new(
        servers,
        initial_share,
        policy.apportionment,
        curves,
        options.resilient,
        options.manager,
        manager_store,
    );
    if let Some(manager_obs) = &fleet_manager_obs {
        manager.fleet = Some(ManagerFleet::new(manager_obs.clone(), servers));
    }
    // Fleet-level decisions (breaker arm/trip/clamp) journal into the
    // manager's fleet journal, or — in the shared single-journal mode —
    // into that shared journal, so either recording flavor can explain
    // a trip. `None` when recording is off keeps the run allocation-
    // and bookkeeping-free.
    let breaker_obs: Option<&Obs> = fleet_manager_obs.as_ref().or(obs);
    let mut recorder = TraceRecorder::new();
    let mut energy = Joules::ZERO;
    let mut violation_seconds = 0.0f64;
    let mut excess_watt_seconds = 0.0f64;
    let mut breaker_streak = 0u64;
    let mut breaker_hold_until: Option<u64> = None;
    let mut breaker_trips = 0u64;
    let mut digest_bytes_total = 0u64;
    let mut max_wave_bytes = 0u64;
    let mut step_nets: Vec<(usize, Watts)> = Vec::new();
    let mut now = Seconds::ZERO;

    for step in 0..steps {
        plane.begin_step(step);
        if let Some(manager_obs) = &fleet_manager_obs {
            // Manager-side records get a poll counter aligned with the
            // control step, comparable to the per-server mediator polls.
            manager_obs.begin_poll();
        }

        // Phase 1: node churn. Restarts first (a node that crashed
        // `node_down_steps` ago rejoins), then fresh crash rolls.
        for (i, agent) in agents.iter_mut().enumerate() {
            if !plane.node_up(i) {
                if plane.restart_due(i) {
                    // A rebooted node's journal clock resumes at fleet
                    // time (its ring survived on local disk; the
                    // downtime is simply a gap in its records).
                    agent.sync_clock(now);
                    agent.restart();
                }
            } else if plane.roll_crash(i) {
                agent.crash();
            }
        }

        // Phase 1b: facility-protection release. The cooldown expired:
        // every up node gets its pre-trip cap back (a node that crashed
        // during the hold cleared its clamp when it rebooted).
        if breaker_hold_until == Some(step) {
            breaker_hold_until = None;
            if let Some(o) = breaker_obs {
                o.emit(now, ObsEvent::BreakerRelease);
            }
            for (i, agent) in agents.iter_mut().enumerate() {
                if plane.node_up(i) {
                    agent.emergency_release();
                }
            }
        }

        // Phase 2: the manager (or its corpse).
        let budget = trace.at(now);
        if plane.manager_takeover_now() {
            manager.failover(step);
        }
        if plane.manager_up() {
            manager.tick(step, budget, &mut plane);
        } else {
            plane.discard_due_uplinks();
        }

        // Phase 3: downlink delivery.
        for (i, agent) in agents.iter_mut().enumerate() {
            if plane.node_up(i) {
                let msgs = plane.poll_down(i);
                agent.receive(&msgs);
            } else {
                plane.discard_due_downlinks(i);
            }
        }

        // Phase 3b: scheduled E4 drift injections — the server's first
        // app stops matching its profile and must re-calibrate,
        // tombstoning the fleet-wide store entry on the way.
        if let Some(warm) = &options.warm_start {
            for &(at, server) in &warm.drift_at {
                if at == step && server < servers && plane.node_up(server) {
                    agents[server].force_drift();
                }
            }
        }

        // Phase 4: simulation step of every up node + telemetry uplink.
        let mut cluster_net = Watts::ZERO;
        let mut wave_bytes = 0u64;
        step_nets.clear();
        for (i, agent) in agents.iter_mut().enumerate() {
            if !plane.node_up(i) {
                continue;
            }
            let report = agent.step(dt);
            energy += report.net_power * dt;
            cluster_net += report.net_power;
            if breaker_obs.is_some() {
                step_nets.push((i, report.net_power));
            }
            // Since-last-ack journal delta. Shipped on *every* wave
            // until acked — a dropped uplink or a dead manager just
            // means the next wave re-ships a digest the idempotent
            // fleet merge dedups for free.
            let journal = fleet.and_then(|fo| agent.ship_journal(fo.max_digest_bytes));
            if let Some(digest) = &journal {
                wave_bytes += digest.bytes;
            }
            plane.send_up(
                i,
                Uplink {
                    server: i,
                    sent_step: step,
                    net_power: report.net_power,
                    profiles: agent.take_profile_digests(),
                    app_shares: if options.estimation.is_some() {
                        agent.estimated_shares()
                    } else {
                        Vec::new()
                    },
                    journal,
                },
            );
        }
        digest_bytes_total += wave_bytes;
        max_wave_bytes = max_wave_bytes.max(wave_bytes);

        // Phase 5: budget scoring, facility protection, and cluster
        // telemetry.
        let violating = cluster_net.violates_cap(budget);
        if violating {
            violation_seconds += dt.value();
            excess_watt_seconds += (cluster_net - budget).value() * dt.value();
            breaker_streak += 1;
            if let Some(o) = breaker_obs {
                // The arming evidence: the fleet-level violation, then
                // each up server drawing above its *intended* share.
                // Comparing against the manager's caps (not the cap the
                // server currently obeys) attributes overdraw to a
                // server running on a stale assignment — exactly the
                // naive-flavor failure a merged timeline must surface.
                o.emit(
                    now,
                    ObsEvent::FleetOverBudget {
                        net_w: cluster_net.value(),
                        budget_w: budget.value(),
                        streak: breaker_streak,
                    },
                );
                for &(i, net) in &step_nets {
                    let share = manager.state.caps[i];
                    if net.violates_cap(share) {
                        o.emit(
                            now,
                            ObsEvent::ServerOverdraw {
                                server: i,
                                net_w: net.value(),
                                share_w: share.value(),
                            },
                        );
                    }
                }
            }
        } else {
            breaker_streak = 0;
        }
        if options.breaker.trip_after_steps > 0
            && breaker_hold_until.is_none()
            && breaker_streak >= options.breaker.trip_after_steps
        {
            breaker_trips += 1;
            breaker_streak = 0;
            breaker_hold_until = Some(step + options.breaker.hold_steps);
            if let Some(o) = breaker_obs {
                o.emit(
                    now,
                    ObsEvent::BreakerTrip {
                        hold_steps: options.breaker.hold_steps,
                        floor_w: options.breaker.floor.value(),
                    },
                );
            }
            for (i, agent) in agents.iter_mut().enumerate() {
                if plane.node_up(i) {
                    agent.emergency_clamp(options.breaker.floor);
                    if let Some(o) = breaker_obs {
                        o.emit(now, ObsEvent::EmergencyClamp { server: i });
                    }
                }
            }
        }
        recorder.push("cluster_net_power", now, cluster_net.value());
        recorder.push("cluster_budget", now, budget.value());
        recorder.push("violation_seconds", now, violation_seconds);
        recorder.push(
            "heartbeat_misses",
            now,
            agents
                .iter()
                .map(ServerAgent::heartbeat_misses)
                .sum::<u64>() as f64,
        );
        recorder.push("failovers", now, manager.failovers as f64);
        recorder.push("reapportionments", now, manager.reapportionments as f64);
        recorder.push("breaker_trips", now, breaker_trips as f64);
        if options.warm_start.is_some() {
            let fleet = agents.iter().fold(ProfileStoreStats::default(), |acc, a| {
                acc.merged(&a.store_stats())
            });
            recorder.push("profile_hits", now, fleet.hits as f64);
            recorder.push("profile_misses", now, fleet.misses as f64);
            recorder.push("profile_invalidations", now, fleet.invalidations as f64);
            recorder.push("profile_evictions", now, fleet.evictions as f64);
            recorder.push("profile_store_bytes", now, fleet.bytes as f64);
        }
        now += dt;
    }

    let simulated = Seconds::new(steps as f64 * dt.value());
    let mut per_app_perf = Vec::new();
    for (i, rates) in nocap.iter().enumerate() {
        for (name, rate) in rates {
            let denom = rate * simulated.value();
            per_app_perf.push(if denom > 0.0 {
                agents[i].total_ops(name) / denom
            } else {
                0.0
            });
        }
    }

    let mut stats = plane.stats();
    stats.heartbeat_misses = agents.iter().map(ServerAgent::heartbeat_misses).sum();
    stats.fallback_engagements = agents.iter().map(ServerAgent::fallback_engagements).sum();
    stats.manager_failovers = manager.failovers;
    stats.checkpoints = manager.checkpoints;
    stats.dead_declarations = manager.dead_declarations;
    stats.rejoins = manager.rejoins;
    stats.reapportionments = manager.reapportionments;
    stats.breaker_trips = breaker_trips;

    let probe_split = agents
        .iter()
        .fold(ProbeSplit::default(), |acc, a| acc.merged(&a.probe_split()));
    let store_stats = agents.iter().fold(ProfileStoreStats::default(), |acc, a| {
        acc.merged(&a.store_stats())
    });
    let store_divergence = manager.store.as_ref().map(|store| {
        let reference = store.digests();
        agents
            .iter()
            .map(|a| digest_divergence(&reference, &a.store_digests()))
            .sum()
    });

    // Fleet flight-recorder epilogue: fold the manager's last journal
    // records (phase-5 breaker decisions land after its tick) and any
    // server records still in flight when the run ended, so the
    // returned timeline is complete — in a live deployment those would
    // simply ship on the next wave.
    let fleet_report = fleet_manager_obs.map(|manager_obs| {
        let mf = manager.fleet.as_mut().expect("fleet recording enabled");
        mf.fold_own_journal();
        let server_obs = fleet_server_obs.unwrap_or_default();
        for (i, o) in server_obs.iter().enumerate() {
            // Local drain, not a wire ship: merge directly so the
            // digest_bytes_total metric keeps counting uplink bytes
            // only.
            let digest = o.digest_since(i as u64, mf.acked[i], usize::MAX);
            if digest.wrapped {
                mf.digest_gaps += 1;
            }
            mf.timeline.merge_digest(&digest);
            mf.acked[i] = mf.acked[i].max(digest.ack_to());
        }
        mf.obs.set_gauge("timeline_len", mf.timeline.len() as f64);
        mf.publish_ack_gauges();
        FleetObsReport {
            timeline: mf.timeline.clone(),
            metrics: manager_obs.metrics(),
            digest_bytes_total,
            max_wave_bytes,
            digest_gaps: mf.digest_gaps,
            last_acked: mf.acked.clone(),
            manager_obs,
            server_obs,
        }
    });

    ResilienceReport {
        report: ClusterReport::from_parts(policy.label, per_app_perf, energy),
        violation_seconds,
        excess_watt_seconds,
        stats,
        trace_digest: fault_trace_digest(plane.records()),
        recorder,
        probe_split,
        store_stats,
        store_divergence,
        fleet: fleet_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_telemetry::metrics::prom_label;
    use powermed_workloads::mixes;

    const DT: Seconds = Seconds::new(0.5);

    fn mixes_for(n: usize) -> Vec<Mix> {
        (0..n).map(|i| mixes::mix((i % 15) + 1).unwrap()).collect()
    }

    fn short_trace(servers: usize) -> ClusterPowerTrace {
        ClusterPowerTrace::synthetic_diurnal(servers, Seconds::new(60.0), 3)
            .peak_shaved(Ratio::new(0.30))
            .clamped_below(Watts::new(78.0 * servers as f64))
    }

    #[test]
    fn estimating_fleet_completes_under_the_same_fault_history() {
        let trace = short_trace(2);
        let mixes = mixes_for(2);
        let oracle = run_cluster(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions::perfect(3),
        );
        let estimating = run_cluster(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions {
                estimation: Some(EstimatorConfig::default()),
                ..ControlOptions::perfect(3)
            },
        );
        // Estimation changes what the mediators plan on, never the
        // control plane's fault stream (CRN holds across the flavors).
        assert_eq!(oracle.trace_digest, estimating.trace_digest);
        for perf in &estimating.report.per_app_perf {
            assert!(
                (0.05..=1.1).contains(perf),
                "estimating fleet keeps apps running: {perf}"
            );
        }
    }

    #[test]
    fn fault_free_plane_consumes_no_randomness_and_delivers_everything() {
        let mut plane = ControlPlane::new(ClusterFaultConfig::none(1), 2);
        plane.begin_step(0);
        plane.send_down(0, Downlink::assignment(1, Watts::new(90.0), false));
        plane.send_up(1, Uplink::report(1, 0, Watts::new(80.0)));
        assert_eq!(plane.poll_down(0).len(), 1);
        assert!(plane.poll_up().is_empty(), "uplinks land next step");
        plane.begin_step(1);
        assert_eq!(plane.poll_up().len(), 1);
        assert_eq!(plane.stats().injected_events(), 0);
        assert!(plane.records().is_empty());
    }

    #[test]
    fn lossy_plane_is_deterministic_per_seed() {
        let config = ClusterFaultConfig {
            downlink_drop_prob: 0.3,
            downlink_delay_max_steps: 2,
            uplink_drop_prob: 0.3,
            uplink_delay_max_steps: 2,
            ..ClusterFaultConfig::none(9)
        };
        let run = |config: &ClusterFaultConfig| {
            let mut plane = ControlPlane::new(config.clone(), 3);
            for step in 0..50 {
                plane.begin_step(step);
                for i in 0..3 {
                    plane.send_down(i, Downlink::assignment(step, Watts::new(90.0), false));
                    plane.send_up(i, Uplink::report(i, step, Watts::new(80.0)));
                    plane.poll_down(i);
                }
                plane.poll_up();
            }
            (fault_trace_digest(plane.records()), plane.stats())
        };
        let (d1, s1) = run(&config);
        let (d2, s2) = run(&config);
        assert_eq!(d1, d2, "same seed, same fault history");
        assert_eq!(s1, s2);
        assert!(s1.downlinks_dropped > 0);
        assert!(s1.uplinks_delayed > 0);
        let reseeded = ClusterFaultConfig { seed: 10, ..config };
        let (d3, _) = run(&reseeded);
        assert_ne!(d1, d3, "different seed, different fault history");
    }

    #[test]
    fn partition_cuts_both_directions_for_the_window() {
        let config = ClusterFaultConfig {
            partitions: vec![PartitionWindow {
                server: 0,
                from_step: 5,
                until_step: 10,
            }],
            ..ClusterFaultConfig::none(4)
        };
        let mut plane = ControlPlane::new(config, 2);
        plane.begin_step(5);
        assert!(plane.partitioned(0));
        assert!(!plane.partitioned(1));
        plane.send_down(0, Downlink::assignment(1, Watts::new(90.0), false));
        plane.send_up(0, Uplink::report(0, 5, Watts::new(80.0)));
        assert_eq!(plane.stats().messages_lost_endpoint_down, 2);
        plane.begin_step(10);
        assert!(!plane.partitioned(0), "window end is exclusive");
    }

    #[test]
    fn managed_equal_matches_monolithic_run_bit_for_bit() {
        // The zero-cost-off contract, at unit-test scale: the refactored
        // control plane with faults off reproduces the monolithic loop.
        let trace = short_trace(2);
        let mono = ClusterManager::new(2, 7).run(ClusterPolicy::EqualOurs, &trace, DT);
        let managed = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions::perfect(7),
        );
        assert_eq!(mono, managed.report);
        assert_eq!(managed.stats.injected_events(), 0);
        assert_eq!(managed.stats.heartbeat_misses, 0);
        assert_eq!(managed.stats.fallback_engagements, 0);
    }

    #[test]
    fn managed_unequal_matches_monolithic_run_bit_for_bit() {
        let trace = short_trace(2);
        let mono = ClusterManager::new(2, 7).run(ClusterPolicy::UnequalOurs, &trace, DT);
        let managed = run_cluster(
            &mixes_for(2),
            ManagedPolicy::unequal_ours(),
            &trace,
            DT,
            &ControlOptions::perfect(7),
        );
        assert_eq!(mono, managed.report);
    }

    #[test]
    fn naive_and_resilient_agree_when_faults_are_off() {
        let trace = short_trace(2);
        let mixes = mixes_for(2);
        let resilient = run_cluster(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions::perfect(11),
        );
        let naive = run_cluster(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions {
                resilient: false,
                ..ControlOptions::perfect(11)
            },
        );
        assert_eq!(resilient.report, naive.report);
        assert_eq!(resilient.trace_digest, naive.trace_digest);
    }

    #[test]
    fn node_crash_restarts_and_rejoins() {
        let config = ClusterFaultConfig {
            node_crash_prob: 0.02,
            node_down_steps: 10,
            ..ClusterFaultConfig::none(21)
        };
        let report = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &short_trace(2),
            DT,
            &ControlOptions {
                faults: config,
                ..ControlOptions::perfect(21)
            },
        );
        assert!(report.stats.node_crashes > 0, "{:?}", report.stats);
        assert!(report.stats.node_restarts > 0);
        assert!(report.report.aggregate_normalized_perf > 0.0);
    }

    #[test]
    fn manager_failover_restores_from_checkpoint() {
        let config = ClusterFaultConfig {
            manager_crash_step: Some(40),
            manager_takeover_steps: 20,
            ..ClusterFaultConfig::none(31)
        };
        let report = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &short_trace(2),
            DT,
            &ControlOptions {
                faults: config,
                ..ControlOptions::perfect(31)
            },
        );
        assert_eq!(report.stats.manager_failovers, 1);
        assert!(report.stats.checkpoints > 0);
        // The takeover reapportions at a fresh epoch.
        assert!(report.stats.reapportionments >= 1);
        assert!(report.report.aggregate_normalized_perf > 0.0);
    }

    #[test]
    fn partitioned_agent_falls_back_and_stays_near_budget() {
        // Server 0 is cut off for 40 s; the resilient flavor decays it
        // to the floor while the naive one keeps the stale cap.
        let trace = short_trace(2);
        let config = ClusterFaultConfig {
            partitions: vec![PartitionWindow {
                server: 0,
                from_step: 20,
                until_step: 100,
            }],
            ..ClusterFaultConfig::none(41)
        };
        let resilient = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions {
                faults: config.clone(),
                ..ControlOptions::perfect(41)
            },
        );
        assert!(resilient.stats.heartbeat_misses > 0);
        assert!(resilient.stats.fallback_engagements >= 1);
        // The manager eventually declares the silent node dead and
        // reapportions, then takes it back on rejoin.
        assert!(resilient.stats.dead_declarations >= 1);
        assert!(resilient.stats.rejoins >= 1);
    }

    #[test]
    fn warm_fleet_reprobes_less_than_cold_under_churn() {
        // Same seed, same crash history: the cold fleet re-measures its
        // full sparse schedule after every reboot, the warm fleet
        // restores its store snapshot and re-admits without probing.
        let trace = short_trace(2);
        let mixes = mixes_for(2);
        let faults = ClusterFaultConfig {
            node_crash_prob: 0.02,
            node_down_steps: 10,
            ..ClusterFaultConfig::none(21)
        };
        let run = |warm: WarmStartOptions| {
            run_cluster(
                &mixes,
                ManagedPolicy::equal_ours(),
                &trace,
                DT,
                &ControlOptions {
                    faults: faults.clone(),
                    warm_start: Some(warm),
                    ..ControlOptions::perfect(21)
                },
            )
        };
        let cold = run(WarmStartOptions::cold());
        let warm = run(WarmStartOptions::warm());
        assert_eq!(
            cold.trace_digest, warm.trace_digest,
            "common random numbers: identical fault history"
        );
        assert!(cold.stats.node_crashes > 0, "{:?}", cold.stats);
        assert_eq!(cold.probe_split.skipped, 0);
        assert_eq!(cold.store_divergence, None);
        assert!(
            warm.probe_split.measured() < cold.probe_split.measured(),
            "warm {:?} vs cold {:?}",
            warm.probe_split,
            cold.probe_split
        );
        assert!(warm.probe_split.skipped > 0);
        assert!(warm.store_stats.hits > 0);
        // The recorder carries the knowledge-plane series.
        let hits = warm.recorder.series("profile_hits").unwrap();
        assert_eq!(hits.last().unwrap().1, warm.store_stats.hits as f64);
        assert!(warm.recorder.series("profile_store_bytes").is_some());
    }

    #[test]
    fn partition_heal_converges_the_stores_after_drift() {
        // Both servers host the same mix (same fingerprints). Server 1
        // is partitioned while server 0 suffers E4 drift: its profile is
        // tombstoned and republished at a higher version. After the
        // partition heals, heartbeats must bring server 1's store to the
        // fresh version — no stale profile left anywhere.
        let trace = short_trace(2);
        let mixes = vec![mixes::mix(1).unwrap(), mixes::mix(1).unwrap()];
        let faults = ClusterFaultConfig {
            partitions: vec![PartitionWindow {
                server: 1,
                from_step: 10,
                until_step: 60,
            }],
            ..ClusterFaultConfig::none(5)
        };
        let warm = WarmStartOptions {
            drift_at: vec![(30, 0)],
            ..WarmStartOptions::warm()
        };
        let report = run_cluster(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions {
                faults,
                warm_start: Some(warm),
                ..ControlOptions::perfect(5)
            },
        );
        assert!(
            report.store_stats.invalidations >= 1,
            "{:?}",
            report.store_stats
        );
        assert_eq!(
            report.store_divergence,
            Some(0),
            "stores must converge after the heal: {:?}",
            report.store_stats
        );
        // The drift re-measurement ran fresh probes even though the
        // first admission had already covered the schedule.
        assert!(report.probe_split.measured() > 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_journals_the_control_plane() {
        use powermed_telemetry::journal::ObsConfig;
        // A budget step mid-run forces a real reapportionment, so the
        // journal sees fresh-epoch assignment waves, not just heartbeats.
        let trace = ClusterPowerTrace::from_samples(vec![
            (Seconds::ZERO, Watts::new(160.0)),
            (Seconds::new(30.0), Watts::new(130.0)),
            (Seconds::new(60.0), Watts::new(160.0)),
        ]);
        let mixes = mixes_for(2);
        let options = ControlOptions {
            faults: ClusterFaultConfig::default_scenario(13),
            ..ControlOptions::perfect(13)
        };
        let base = run_cluster(&mixes, ManagedPolicy::equal_ours(), &trace, DT, &options);
        let obs = Obs::new(ObsConfig::default());
        let observed = run_cluster_observed(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &options,
            Some(&obs),
        );
        // The flight recorder is bookkeeping only: physics, policy, and
        // the fault history are untouched by attaching it.
        assert_eq!(base.report, observed.report);
        assert_eq!(base.trace_digest, observed.trace_digest);
        assert_eq!(base.violation_seconds, observed.violation_seconds);
        assert_eq!(base.recorder, observed.recorder);
        // Message lifecycle and mirrored fault records hit the journal.
        let journal = obs.journal_snapshot();
        let kinds: std::collections::BTreeSet<&str> =
            journal.iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains("downlink_sent"), "kinds: {kinds:?}");
        assert!(kinds.contains("uplink_sent"), "kinds: {kinds:?}");
        assert!(
            kinds.contains("link_dropped") || kinds.contains("link_delayed"),
            "the reference scenario injects link faults: {kinds:?}"
        );
        assert!(kinds.contains("poll"), "mediator polls are journalled");
        let metrics = obs.metrics();
        assert!(
            metrics.counter(&prom_label(
                "events_by_kind_total",
                &[("kind", "uplink_sent")]
            )) > 0
        );
        // Adopted assignment epochs are stamped onto later records.
        assert!(
            journal.iter().any(|r| r.epoch > 0),
            "downlink adoption sets the journal epoch"
        );
    }

    #[test]
    fn zero_duration_trace_yields_empty_run() {
        let trace = ClusterPowerTrace::from_samples(vec![(Seconds::ZERO, Watts::new(200.0))]);
        let report = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions::perfect(1),
        );
        assert_eq!(report.report.per_app_perf, vec![0.0; 4]);
        assert_eq!(report.violation_seconds, 0.0);
        assert_eq!(report.report.energy, Joules::ZERO);
    }

    #[test]
    fn sustained_overdraw_trips_the_breaker_and_bounds_violations() {
        // Budget steps down at t=30 s but every downlink is lost, so the
        // naive fleet keeps drawing at its boot caps. The facility
        // breaker must trip repeatedly — clamping the fleet to the floor
        // for each cooldown — so total violation time stays well below
        // the unprotected run's.
        let trace = ClusterPowerTrace::from_samples(vec![
            (Seconds::ZERO, Watts::new(200.0)),
            (Seconds::new(30.0), Watts::new(120.0)),
            (Seconds::new(60.0), Watts::new(120.0)),
        ]);
        let faults = ClusterFaultConfig {
            downlink_drop_prob: 1.0,
            ..ClusterFaultConfig::none(9)
        };
        let opts = ControlOptions {
            resilient: false,
            faults,
            breaker: BreakerConfig::default(),
            ..ControlOptions::perfect(9)
        };
        let protected = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &opts,
        );
        let unprotected = run_cluster(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &ControlOptions {
                breaker: BreakerConfig::disabled(),
                ..opts.clone()
            },
        );
        assert_eq!(unprotected.stats.breaker_trips, 0);
        assert!(
            unprotected.violation_seconds >= 25.0,
            "unprotected naive fleet stays in violation: {:.1} s",
            unprotected.violation_seconds
        );
        assert!(
            protected.stats.breaker_trips >= 2,
            "breaker re-trips while the stale cap keeps coming back: {}",
            protected.stats.breaker_trips
        );
        assert!(
            protected.violation_seconds < 0.5 * unprotected.violation_seconds,
            "clamp holds bound the violation time: {:.1} vs {:.1} s",
            protected.violation_seconds,
            unprotected.violation_seconds
        );
        let trips = protected.recorder.series("breaker_trips").unwrap();
        assert_eq!(
            trips.last().unwrap().1,
            protected.stats.breaker_trips as f64,
            "the telemetry series tracks the counter"
        );
    }

    #[test]
    fn flight_recorded_run_is_bit_identical_and_merges_every_journal() {
        // Same shape as the single-journal bit-identity test, but with
        // the fleet recorder: per-server journals ship digests over the
        // lossy reference plane and the manager merges them.
        let trace = ClusterPowerTrace::from_samples(vec![
            (Seconds::ZERO, Watts::new(160.0)),
            (Seconds::new(30.0), Watts::new(130.0)),
            (Seconds::new(60.0), Watts::new(160.0)),
        ]);
        let mixes = mixes_for(2);
        let options = ControlOptions {
            faults: ClusterFaultConfig::default_scenario(13),
            ..ControlOptions::perfect(13)
        };
        let base = run_cluster(&mixes, ManagedPolicy::equal_ours(), &trace, DT, &options);
        let fo = FleetObsOptions::default();
        let recorded = run_cluster_flight_recorded(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &options,
            &fo,
        );
        // Zero-cost-off, fleet flavor: recording changes bookkeeping
        // only — physics, policy and the fault history are untouched.
        assert_eq!(base.report, recorded.report);
        assert_eq!(base.trace_digest, recorded.trace_digest);
        assert_eq!(base.violation_seconds, recorded.violation_seconds);
        assert_eq!(base.recorder, recorded.recorder);
        assert!(base.fleet.is_none(), "plain runs carry no fleet report");

        let fleet = recorded.fleet.as_ref().expect("fleet report attached");
        // Every journal reached the timeline: both servers and the
        // manager's own (which holds the plane's mirrored fault events).
        let sources: std::collections::BTreeSet<u64> =
            fleet.timeline.iter().map(|e| e.server_id).collect();
        assert!(sources.contains(&0), "sources: {sources:?}");
        assert!(sources.contains(&1), "sources: {sources:?}");
        assert!(sources.contains(&MANAGER_SERVER_ID), "sources: {sources:?}");
        // Acks rode the downlink waves and advanced the watermarks.
        assert!(
            fleet.last_acked.iter().all(|a| *a > 0),
            "acks advanced: {:?}",
            fleet.last_acked
        );
        // Bytes-on-the-wire are bounded per wave by construction.
        assert!(fleet.digest_bytes_total > 0);
        assert!(
            fleet.max_wave_bytes <= (mixes.len() * fo.max_digest_bytes) as u64,
            "wave bound: {} <= {}",
            fleet.max_wave_bytes,
            mixes.len() * fo.max_digest_bytes
        );
        // The manager-side registry exposes the satellite metrics.
        assert!(fleet.metrics.counter("digest_bytes_total") > 0);
        assert_eq!(
            fleet.metrics.gauge("timeline_len"),
            Some(fleet.timeline.len() as f64)
        );
        assert!(fleet
            .metrics
            .gauge(&prom_label("last_acked_seq", &[("server", "0")]))
            .is_some());

        // Same seed, same merged timeline — byte-identical.
        let again = run_cluster_flight_recorded(
            &mixes,
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &options,
            &fo,
        );
        let fleet_again = again.fleet.as_ref().expect("fleet report attached");
        assert_eq!(fleet.timeline.digest(), fleet_again.timeline.digest());
        assert_eq!(fleet.timeline, fleet_again.timeline);
    }

    #[test]
    fn fleet_timeline_survives_manager_failover() {
        // Kill the resilient manager mid-run: the standby restores the
        // checkpointed timeline and the agents re-ship whatever the
        // crash lost, so records from before the kill are still present
        // at run end.
        let trace = short_trace(2);
        let options = ControlOptions {
            faults: ClusterFaultConfig {
                manager_crash_step: Some(60),
                manager_takeover_steps: 10,
                ..ClusterFaultConfig::default_scenario(21)
            },
            ..ControlOptions::perfect(21)
        };
        let recorded = run_cluster_flight_recorded(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &options,
            &FleetObsOptions::default(),
        );
        assert!(recorded.stats.manager_failovers >= 1);
        let fleet = recorded.fleet.as_ref().expect("fleet report attached");
        // Pre-kill records (t < 30 s) from both servers survived the
        // takeover, through the checkpoint or an idempotent re-ship.
        for server in [0u64, 1u64] {
            assert!(
                fleet
                    .timeline
                    .iter()
                    .any(|e| e.server_id == server && e.record.at < Seconds::new(30.0)),
                "server {server} pre-kill records survive the failover"
            );
        }
        // The failover is itself on the record — both as mirrored fault
        // events in the manager's journal and as a metrics counter.
        assert!(fleet
            .manager_obs
            .journal_snapshot()
            .iter()
            .any(|r| matches!(r.event, ObsEvent::ManagerCrash | ObsEvent::ManagerTakeover)));
        assert!(fleet.metrics.counter("timeline_failovers_total") > 0);
    }

    #[test]
    fn breaker_trip_is_journalled_with_its_arming_evidence() {
        // The sustained-overdraw scenario, flight-recorded: the naive
        // fleet keeps drawing over a stepped-down budget, and the
        // manager's journal must carry the whole causal chain — the
        // over-budget streak, the per-server overdraw attribution, the
        // trip, the clamps, and the eventual release.
        let trace = ClusterPowerTrace::from_samples(vec![
            (Seconds::ZERO, Watts::new(200.0)),
            (Seconds::new(30.0), Watts::new(120.0)),
            (Seconds::new(60.0), Watts::new(120.0)),
        ]);
        let opts = ControlOptions {
            resilient: false,
            faults: ClusterFaultConfig {
                downlink_drop_prob: 1.0,
                ..ClusterFaultConfig::none(9)
            },
            breaker: BreakerConfig::default(),
            ..ControlOptions::perfect(9)
        };
        let recorded = run_cluster_flight_recorded(
            &mixes_for(2),
            ManagedPolicy::equal_ours(),
            &trace,
            DT,
            &opts,
            &FleetObsOptions::default(),
        );
        assert!(recorded.stats.breaker_trips >= 1);
        let fleet = recorded.fleet.as_ref().expect("fleet report attached");
        let kinds: std::collections::BTreeSet<&str> = fleet
            .timeline
            .iter()
            .filter(|e| e.server_id == MANAGER_SERVER_ID)
            .map(|e| e.record.event.kind())
            .collect();
        for kind in [
            "fleet_over_budget",
            "server_overdraw",
            "breaker_trip",
            "emergency_clamp",
            "breaker_release",
        ] {
            assert!(kinds.contains(kind), "missing {kind}: {kinds:?}");
        }
        // Overdraw attribution names the stale-capped servers against
        // the manager's *intended* share, not the cap they obey.
        assert!(fleet.timeline.iter().any(|e| matches!(
            e.record.event,
            ObsEvent::ServerOverdraw { net_w, share_w, .. } if net_w > share_w
        )));
    }
}
