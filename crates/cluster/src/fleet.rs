//! Shared fleet construction for the cluster tier.
//!
//! `run_equal`, `run_unequal` and the manager ↔ agent control plane all
//! stand up the same per-server stack: a [`ServerSim`] (with or without
//! the Lead-Acid UPS), a [`PowerMediator`] running the policy under
//! test, the Table II mix admitted, and the uncapped solo rates every
//! normalized-throughput report divides by. This module is the single
//! construction path, so node restarts (which rebuild one server from
//! scratch: apps restart, ESD state resets) reuse the exact admission
//! sequence the initial boot used.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::{EnergyStorage, LeadAcidBattery, NoEsd};
use powermed_profiles::ProfileStore;
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::Watts;
use powermed_workloads::{catalog, mixes::Mix};

/// State of charge every cluster server's ESD boots (and reboots) with.
pub const INITIAL_SOC: f64 = 0.5;

/// One server's simulation + mediation stack with its mix admitted.
///
/// # Panics
///
/// Panics if the mix does not fit on the server (the Table II mixes
/// always do).
pub fn build_server(
    spec: &ServerSpec,
    mix: &Mix,
    kind: PolicyKind,
    with_battery: bool,
    cap: Watts,
) -> (ServerSim, PowerMediator) {
    build_server_with(spec, mix, kind, with_battery, cap, None)
}

/// How a warm-start server boots: the knowledge-plane store it consults
/// (possibly restored from a crash-durable snapshot), its fleet-wide
/// server id for digest provenance, and the online sparse-sampling
/// fraction.
#[derive(Debug)]
pub struct WarmBoot {
    /// The store the mediator consults and publishes to; `None` runs
    /// online calibration cold (the baseline the experiment compares).
    pub store: Option<ProfileStore>,
    /// Provenance id stamped on profiles this server measures.
    pub server_id: u64,
    /// Fraction of the knob grid the online calibrator probes.
    pub sampling_fraction: f64,
}

/// [`build_server`], optionally with online calibration and the profile
/// knowledge plane attached. `warm: None` is byte-for-byte the classic
/// exhaustive-calibration boot.
pub fn build_server_with(
    spec: &ServerSpec,
    mix: &Mix,
    kind: PolicyKind,
    with_battery: bool,
    cap: Watts,
    warm: Option<WarmBoot>,
) -> (ServerSim, PowerMediator) {
    let esd: Box<dyn EnergyStorage> = if with_battery {
        Box::new(LeadAcidBattery::server_ups().with_soc(INITIAL_SOC))
    } else {
        Box::new(NoEsd)
    };
    let mut sim = ServerSim::new(spec.clone(), esd);
    let mut mediator = PowerMediator::new(kind, spec.clone(), cap);
    if let Some(warm) = warm {
        mediator = mediator.with_online_calibration(&catalog::all(), warm.sampling_fraction);
        if let Some(store) = warm.store {
            mediator = mediator.with_profile_store(store, warm.server_id);
        }
    }
    for app in mix.apps() {
        mediator
            .admit(&mut sim, app.clone())
            .expect("two apps fit on a server");
    }
    (sim, mediator)
}

/// Uncapped solo throughput per app of `mix`, in mix order — the
/// denominators of every normalized-performance report.
pub fn nocap_rates(spec: &ServerSpec, mix: &Mix) -> Vec<(String, f64)> {
    mix.apps()
        .iter()
        .map(|p| (p.name().to_string(), p.uncapped(spec).throughput))
        .collect()
}

/// A built fleet: one sim + mediator per server, plus the per-server
/// uncapped rates.
#[derive(Debug)]
pub struct Fleet {
    /// One simulated server per mix.
    pub sims: Vec<ServerSim>,
    /// The matching mediators (same indexing).
    pub mediators: Vec<PowerMediator>,
    /// `(app name, uncapped solo rate)` pairs per server.
    pub nocap_rates: Vec<Vec<(String, f64)>>,
}

/// Builds the whole fleet: server `i` hosts `mixes[i]`, every mediator
/// starts at `initial_cap`.
pub fn build_fleet(
    spec: &ServerSpec,
    mixes: &[Mix],
    kind: PolicyKind,
    with_battery: bool,
    initial_cap: Watts,
) -> Fleet {
    let specs = vec![spec.clone(); mixes.len()];
    build_fleet_skus(&specs, mixes, kind, with_battery, initial_cap)
}

/// SKU-aware fleet construction: server `i` is a `specs[i]` hosting
/// `mixes[i]`. Uncapped solo rates are per-SKU — the same app has a
/// different roofline on an edge box than on a throughput box, and
/// every normalized report divides by the rate of the server actually
/// hosting it.
///
/// # Panics
///
/// Panics unless `specs` and `mixes` have equal length.
pub fn build_fleet_skus(
    specs: &[ServerSpec],
    mixes: &[Mix],
    kind: PolicyKind,
    with_battery: bool,
    initial_cap: Watts,
) -> Fleet {
    assert_eq!(
        specs.len(),
        mixes.len(),
        "one spec per server, one mix per server"
    );
    let mut sims = Vec::with_capacity(mixes.len());
    let mut mediators = Vec::with_capacity(mixes.len());
    let mut rates = Vec::with_capacity(mixes.len());
    for (spec, mix) in specs.iter().zip(mixes) {
        let (sim, mediator) = build_server(spec, mix, kind, with_battery, initial_cap);
        sims.push(sim);
        mediators.push(mediator);
        rates.push(nocap_rates(spec, mix));
    }
    Fleet {
        sims,
        mediators,
        nocap_rates: rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::mixes;

    #[test]
    fn build_server_admits_both_apps() {
        let spec = ServerSpec::xeon_e5_2620();
        let mix = mixes::mix(1).unwrap();
        let (sim, med) = build_server(
            &spec,
            &mix,
            PolicyKind::AppResAware,
            false,
            Watts::new(100.0),
        );
        assert_eq!(sim.app_names().len(), 2);
        assert_eq!(med.accountant().cap(), Watts::new(100.0));
    }

    #[test]
    fn fleet_indexes_line_up() {
        let spec = ServerSpec::xeon_e5_2620();
        let mixes: Vec<Mix> = (1..=3).map(|i| mixes::mix(i).unwrap()).collect();
        let fleet = build_fleet(
            &spec,
            &mixes,
            PolicyKind::AppResEsdAware,
            true,
            Watts::new(90.0),
        );
        assert_eq!(fleet.sims.len(), 3);
        assert_eq!(fleet.mediators.len(), 3);
        assert_eq!(fleet.nocap_rates.len(), 3);
        for (i, mix) in mixes.iter().enumerate() {
            let names: Vec<&str> = fleet.nocap_rates[i]
                .iter()
                .map(|(n, _)| n.as_str())
                .collect();
            assert_eq!(names, vec![mix.app1.name(), mix.app2.name()]);
            assert!(fleet.nocap_rates[i].iter().all(|(_, r)| *r > 0.0));
            // The battery boots at the shared initial SoC.
            assert!(fleet.sims[i].esd().capacity().value() > 0.0);
        }
    }

    #[test]
    fn rebuild_is_bit_identical_to_first_boot() {
        // A node restart rebuilds one server through the same path the
        // initial boot used; the stacks must match exactly.
        let spec = ServerSpec::xeon_e5_2620();
        let mix = mixes::mix(4).unwrap();
        let (mut sim_a, mut med_a) = build_server(
            &spec,
            &mix,
            PolicyKind::AppResAware,
            false,
            Watts::new(95.0),
        );
        let (mut sim_b, mut med_b) = build_server(
            &spec,
            &mix,
            PolicyKind::AppResAware,
            false,
            Watts::new(95.0),
        );
        for _ in 0..20 {
            let ra = med_a.step(&mut sim_a, powermed_units::Seconds::new(0.5));
            let rb = med_b.step(&mut sim_b, powermed_units::Seconds::new(0.5));
            assert_eq!(ra, rb);
        }
    }
}
