//! Cluster power-demand traces and peak-shave cap schedules.
//!
//! The paper replays caps derived from a published connection-intensive
//! service trace (Chen et al., NSDI'08). That trace is not available
//! here, so we synthesize a diurnal demand curve with the same character
//! — a pronounced peak, a deep overnight trough, and short-term noise —
//! and derive the cap series by clipping it at `(1 − shave) · peak`
//! (Fig. 12a).

use powermed_units::{Ratio, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Peak demand attributed to one loaded shared server, including supply
/// overheads (PSU losses, fans) on top of the ~105 W IT draw.
const SERVER_PEAK_W: f64 = 115.0;

/// A time series of cluster-level power values (demand or caps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPowerTrace {
    samples: Vec<(Seconds, Watts)>,
}

impl ClusterPowerTrace {
    /// Builds a trace from explicit samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or timestamps are not strictly
    /// increasing.
    pub fn from_samples(samples: Vec<(Seconds, Watts)>) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one sample");
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0, "timestamps must be increasing");
        }
        Self { samples }
    }

    /// Synthesizes a diurnal demand trace for a cluster of `servers`
    /// servers over `duration` (one compressed "day"), deterministic in
    /// `seed`.
    ///
    /// The shape mirrors published service traces: a mid-day peak at
    /// full cluster draw, an overnight trough near 75% of it, plus ±2%
    /// noise. (The trough stays above the fleet's idle+uncore floor —
    /// a cap equal to off-peak demand must still be enforceable.)
    pub fn synthetic_diurnal(servers: usize, duration: Seconds, seed: u64) -> Self {
        assert!(servers > 0 && duration.value() > 0.0);
        let peak = SERVER_PEAK_W * servers as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 96; // 15-minute granularity over the compressed day
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = duration * (i as f64 / n as f64);
            let phase = i as f64 / n as f64 * std::f64::consts::TAU;
            // Peak mid-day (phase π), trough at the ends.
            let diurnal = 0.875 - 0.125 * phase.cos();
            let noise = 1.0 + rng.gen_range(-0.02..0.02);
            samples.push((t, Watts::new(peak * diurnal * noise)));
        }
        Self { samples }
    }

    /// The peak value of the trace.
    pub fn peak(&self) -> Watts {
        self.samples
            .iter()
            .map(|(_, w)| *w)
            .fold(Watts::ZERO, Watts::max)
    }

    /// The cap schedule that shaves `shave` of this trace's peak: the
    /// demand clipped at `(1 − shave) · peak` (Fig. 12a).
    ///
    /// # Panics
    ///
    /// Panics if `shave` is not within `[0, 1)`.
    pub fn peak_shaved(&self, shave: Ratio) -> Self {
        assert!(
            (0.0..1.0).contains(&shave.value()),
            "shave fraction in [0, 1)"
        );
        let ceiling = self.peak() * shave.complement();
        let samples = self
            .samples
            .iter()
            .map(|(t, w)| (*t, w.min(ceiling)))
            .collect();
        Self { samples }
    }

    /// Raises every sample to at least `floor` — the workable minimum of
    /// the fleet (caps below aggregate `P_idle + P_cm` cannot be
    /// enforced by power management at all; the paper's replayed caps
    /// likewise stay within the servers' controllable range).
    pub fn clamped_below(&self, floor: Watts) -> Self {
        Self {
            samples: self
                .samples
                .iter()
                .map(|(t, w)| (*t, w.max(floor)))
                .collect(),
        }
    }

    /// The value in force at time `t` (step function; clamps to the
    /// first/last sample outside the range).
    pub fn at(&self, t: Seconds) -> Watts {
        let mut current = self.samples[0].1;
        for (ts, w) in &self.samples {
            if *ts <= t {
                current = *w;
            } else {
                break;
            }
        }
        current
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(Seconds, Watts)] {
        &self.samples
    }

    /// Total duration covered (time of the last sample).
    pub fn duration(&self) -> Seconds {
        self.samples.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ClusterPowerTrace {
        ClusterPowerTrace::synthetic_diurnal(10, Seconds::new(960.0), 1)
    }

    #[test]
    fn diurnal_shape() {
        let t = trace();
        assert_eq!(t.samples().len(), 96);
        let peak = t.peak().value();
        assert!((1050.0..1220.0).contains(&peak), "peak {peak}");
        // Trough near 75% of peak.
        let trough = t
            .samples()
            .iter()
            .map(|(_, w)| w.value())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (0.70..0.82).contains(&(trough / peak)),
            "trough/peak {}",
            trough / peak
        );
    }

    #[test]
    fn shave_clips_at_ceiling() {
        let t = trace();
        let shaved = t.peak_shaved(Ratio::new(0.15));
        let ceiling = t.peak().value() * 0.85;
        for (_, w) in shaved.samples() {
            assert!(w.value() <= ceiling + 1e-9);
        }
        // Off-peak samples are untouched.
        let untouched = t
            .samples()
            .iter()
            .zip(shaved.samples())
            .filter(|((_, a), (_, b))| a == b)
            .count();
        assert!(untouched > 20, "only the peak is clipped");
    }

    #[test]
    fn step_lookup() {
        let t = ClusterPowerTrace::from_samples(vec![
            (Seconds::new(0.0), Watts::new(100.0)),
            (Seconds::new(10.0), Watts::new(80.0)),
        ]);
        assert_eq!(t.at(Seconds::new(-5.0)), Watts::new(100.0));
        assert_eq!(t.at(Seconds::new(5.0)), Watts::new(100.0));
        assert_eq!(t.at(Seconds::new(10.0)), Watts::new(80.0));
        assert_eq!(t.at(Seconds::new(50.0)), Watts::new(80.0));
        assert_eq!(t.duration(), Seconds::new(10.0));
    }

    #[test]
    fn clamp_raises_low_samples() {
        let t = trace().peak_shaved(Ratio::new(0.45));
        let clamped = t.clamped_below(Watts::new(780.0));
        assert!(clamped
            .samples()
            .iter()
            .all(|(_, w)| w.value() >= 780.0 - 1e-9));
        // Samples above the floor are untouched.
        for ((_, a), (_, b)) in t.samples().iter().zip(clamped.samples()) {
            if a.value() >= 780.0 {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClusterPowerTrace::synthetic_diurnal(10, Seconds::new(100.0), 5);
        let b = ClusterPowerTrace::synthetic_diurnal(10, Seconds::new(100.0), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn unsorted_samples_rejected() {
        let _ = ClusterPowerTrace::from_samples(vec![
            (Seconds::new(5.0), Watts::new(1.0)),
            (Seconds::new(1.0), Watts::new(1.0)),
        ]);
    }

    #[test]
    fn zero_duration_single_sample_trace() {
        // One sample at t = 0 is a degenerate but legal trace: duration
        // is zero, lookups return that sample everywhere, and the
        // transforms keep it a single sample.
        let t = ClusterPowerTrace::from_samples(vec![(Seconds::ZERO, Watts::new(500.0))]);
        assert_eq!(t.duration(), Seconds::ZERO);
        assert_eq!(t.at(Seconds::ZERO), Watts::new(500.0));
        assert_eq!(t.at(Seconds::new(1e6)), Watts::new(500.0));
        assert_eq!(t.peak(), Watts::new(500.0));
        let shaved = t.peak_shaved(Ratio::new(0.30));
        assert_eq!(shaved.samples().len(), 1);
        assert_eq!(shaved.at(Seconds::ZERO), Watts::new(350.0));
        assert_eq!(
            shaved.clamped_below(Watts::new(400.0)).at(Seconds::ZERO),
            Watts::new(400.0)
        );
    }

    #[test]
    fn shave_ratio_zero_is_identity() {
        let t = trace();
        let shaved = t.peak_shaved(Ratio::new(0.0));
        // Clipping at 100% of the peak changes nothing.
        assert_eq!(t, shaved);
    }

    #[test]
    #[should_panic(expected = "shave fraction in [0, 1)")]
    fn shave_ratio_one_is_rejected() {
        // Shaving the whole peak would leave a 0 W cap: unenforceable,
        // and excluded by the documented [0, 1) domain.
        let _ = trace().peak_shaved(Ratio::new(1.0));
    }

    #[test]
    fn clamp_interacts_with_the_per_server_floor() {
        // 10 servers × 50 W idle floor: a stringent shave can dip the
        // cap below what power management can enforce; the clamp holds
        // the schedule at the fleet floor while leaving the rest alone.
        let servers = 10usize;
        let fleet_floor = Watts::new(50.0 * servers as f64);
        let t = ClusterPowerTrace::from_samples(vec![
            (Seconds::new(0.0), Watts::new(450.0)),  // below the floor
            (Seconds::new(10.0), Watts::new(500.0)), // exactly the floor
            (Seconds::new(20.0), Watts::new(900.0)), // above the floor
        ]);
        let clamped = t.clamped_below(fleet_floor);
        assert_eq!(clamped.at(Seconds::new(0.0)), fleet_floor);
        assert_eq!(clamped.at(Seconds::new(10.0)), fleet_floor);
        assert_eq!(clamped.at(Seconds::new(20.0)), Watts::new(900.0));
        // An equal split of the clamped schedule never assigns a server
        // less than its own 50 W floor.
        for (_, w) in clamped.samples() {
            assert!(*w / servers as f64 >= Watts::new(50.0));
        }
    }
}
