//! The cluster manager and the three evaluated cluster policies.

use powermed_core::policy::PolicyKind;
use powermed_server::{KnobSetting, ServerSpec};
use powermed_units::{Joules, Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};
use powermed_workloads::profile::AppProfile;
use serde::{Deserialize, Serialize};

use crate::control::{self, Apportionment, ControlOptions, ManagedPolicy};
use crate::trace::ClusterPowerTrace;

/// Nominal draw of one fully loaded server, used by the consolidation
/// baseline to decide how many servers the budget powers.
const SERVER_LOADED_W: f64 = 105.0;

/// Cluster-level power management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterPolicy {
    /// Even split; servers enforce with utility-unaware RAPL capping.
    EqualRapl,
    /// Even split; servers run `App+Res+ESD-Aware` mediation.
    EqualOurs,
    /// Power only as many servers as the budget allows, migrate
    /// applications to them, cap nothing.
    ConsolidationMigration,
    /// Extension beyond the paper (its future work (i)): the cluster
    /// manager apportions the cluster cap *unevenly* across servers by
    /// each server's own utility curve — the same marginal-utility
    /// reasoning the paper applies within a server, lifted one level up
    /// the power hierarchy. Servers still run `App+Res+ESD-Aware`.
    UnequalOurs,
}

impl ClusterPolicy {
    /// Display name as used in Fig. 12b.
    pub fn name(self) -> &'static str {
        match self {
            Self::EqualRapl => "Equal(RAPL)",
            Self::EqualOurs => "Equal(Ours)",
            Self::ConsolidationMigration => "Consolidation+Migration(no cap)",
            Self::UnequalOurs => "Unequal(Ours)",
        }
    }
}

impl core::fmt::Display for ClusterPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The strategy evaluated.
    pub policy: ClusterPolicy,
    /// Mean over all applications of throughput normalized to uncapped
    /// execution (the Fig. 12b y-axis).
    pub aggregate_normalized_perf: f64,
    /// Total cluster energy drawn over the run.
    pub energy: Joules,
    /// Performance per kilojoule (the power-efficiency metric behind
    /// the paper's 4%/12% efficiency claims).
    pub perf_per_kilojoule: f64,
    /// Per-application normalized performance.
    pub per_app_perf: Vec<f64>,
}

impl ClusterReport {
    /// Builds a report from per-application normalized throughputs and
    /// the total energy drawn.
    pub fn from_parts(policy: ClusterPolicy, per_app_perf: Vec<f64>, energy: Joules) -> Self {
        let aggregate = if per_app_perf.is_empty() {
            0.0
        } else {
            per_app_perf.iter().sum::<f64>() / per_app_perf.len() as f64
        };
        let kj = (energy.value() / 1000.0).max(1e-9);
        ClusterReport {
            policy,
            aggregate_normalized_perf: aggregate,
            energy,
            perf_per_kilojoule: aggregate / kj,
            per_app_perf,
        }
    }
}

/// Drives a fixed fleet of shared servers through a cap schedule.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    servers: usize,
    seed: u64,
}

impl ClusterManager {
    /// A cluster of `servers` servers (the paper uses 10); `seed` keeps
    /// any tie-breaking deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize, seed: u64) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        Self { servers, seed }
    }

    /// The workload: server `i` hosts Table II mix `(i mod 15) + 1`.
    pub fn workload(&self) -> Vec<Mix> {
        (0..self.servers)
            .map(|i| mixes::mix((i % 15) + 1).expect("mix exists"))
            .collect()
    }

    /// Runs `policy` over the cap schedule `trace` with control step
    /// `dt`, returning the aggregate report.
    pub fn run(
        &self,
        policy: ClusterPolicy,
        trace: &ClusterPowerTrace,
        dt: Seconds,
    ) -> ClusterReport {
        match policy {
            ClusterPolicy::EqualRapl => {
                self.run_equal(policy, PolicyKind::UtilUnaware, false, trace, dt)
            }
            ClusterPolicy::EqualOurs => {
                self.run_equal(policy, PolicyKind::AppResEsdAware, true, trace, dt)
            }
            ClusterPolicy::ConsolidationMigration => self.run_consolidation(trace, dt),
            ClusterPolicy::UnequalOurs => self.run_unequal(trace, dt),
        }
    }

    /// The utility-aware apportionment extension: per-server value
    /// curves are computed from each server's application measurements
    /// (through the shared [`powermed_core::cache::MeasurementCache`]),
    /// then the cluster cap is split by an exact knapsack-style DP over
    /// 5 W increments whenever the trace changes.
    fn run_unequal(&self, trace: &ClusterPowerTrace, dt: Seconds) -> ClusterReport {
        self.run_managed(ManagedPolicy::unequal_ours(), trace, dt)
    }

    /// Runs `policy` through the manager ↔ agent control plane with a
    /// fault-free network — the same loop the fault experiments use,
    /// which with faults off is bit-identical to the original monolithic
    /// per-policy loops.
    fn run_managed(
        &self,
        policy: ManagedPolicy,
        trace: &ClusterPowerTrace,
        dt: Seconds,
    ) -> ClusterReport {
        control::run_cluster(
            &self.workload(),
            policy,
            trace,
            dt,
            &ControlOptions::perfect(self.seed),
        )
        .report
    }

    /// Runs `policy` through the control plane under an explicit fault
    /// and resilience configuration, returning the full resilience
    /// report (violation-seconds, fault counters, telemetry series).
    pub fn run_with_control(
        &self,
        policy: ManagedPolicy,
        trace: &ClusterPowerTrace,
        dt: Seconds,
        options: &ControlOptions,
    ) -> crate::control::ResilienceReport {
        control::run_cluster(&self.workload(), policy, trace, dt, options)
    }

    /// [`ClusterManager::run_with_control`] with the fleet flight
    /// recorder on: every server journals locally and ships digests
    /// upstream, and the returned report carries the manager's merged
    /// [`powermed_telemetry::FleetTimeline`] in
    /// [`crate::control::ResilienceReport::fleet`].
    pub fn run_flight_recorded(
        &self,
        policy: ManagedPolicy,
        trace: &ClusterPowerTrace,
        dt: Seconds,
        options: &ControlOptions,
        fleet: &control::FleetObsOptions,
    ) -> crate::control::ResilienceReport {
        control::run_cluster_flight_recorded(&self.workload(), policy, trace, dt, options, fleet)
    }

    /// Candidate per-server caps: 50 W (parked at idle) through 115 W in
    /// 5 W steps — the ladder for the paper's homogeneous Xeon fleet.
    pub fn candidate_caps() -> impl Iterator<Item = Watts> {
        (0..=13).map(|i| Watts::new(50.0 + 5.0 * i as f64))
    }

    /// Candidate caps for an arbitrary SKU: from its idle power
    /// (rounded up to the 5 W grid — parked) through its rated power
    /// (rounded down) in 5 W steps. For the Xeon this reproduces
    /// [`Self::candidate_caps`] exactly; an edge SKU gets a short cheap
    /// ladder, a throughput SKU a long expensive one.
    pub fn candidate_caps_for(spec: &ServerSpec) -> Vec<Watts> {
        const STEP: f64 = 5.0;
        let floor = (spec.idle_power().value() / STEP).ceil() * STEP;
        let ceiling = (spec.rated_power().value() / STEP).floor() * STEP;
        let levels = ((ceiling - floor) / STEP).max(0.0) as usize;
        (0..=levels)
            .map(|i| Watts::new(floor + STEP * i as f64))
            .collect()
    }

    /// The parked floor of a SKU: its idle power on the 5 W grid (the
    /// first rung of [`Self::candidate_caps_for`]).
    pub fn cap_floor_for(spec: &ServerSpec) -> Watts {
        Watts::new((spec.idle_power().value() / 5.0).ceil() * 5.0)
    }

    /// Exact DP split of `total` across servers, maximizing the sum of
    /// per-server values on 5 W granularity. Every server receives at
    /// least the 50 W idle floor — when `total` cannot even cover the
    /// fleet's aggregate idle power, the returned floors intentionally
    /// sum above `total` (such a cap is physically unenforceable by
    /// power management, mirroring the per-server floor semantics).
    pub fn apportion_cluster(curves: &[Vec<(Watts, f64)>], total: Watts) -> Vec<Watts> {
        let floors = vec![Watts::new(50.0); curves.len()];
        Self::apportion_cluster_with_floors(curves, total, &floors)
    }

    /// SKU-aware apportionment: like [`Self::apportion_cluster`], but
    /// server `i` falls back to its own `floors[i]` (its parked idle
    /// power) instead of the homogeneous 50 W when the budget cannot
    /// cover the fleet. Pair it with per-SKU value curves from
    /// [`Self::candidate_caps_for`].
    ///
    /// # Panics
    ///
    /// Panics unless `floors` and `curves` have equal length.
    pub fn apportion_cluster_with_floors(
        curves: &[Vec<(Watts, f64)>],
        total: Watts,
        floors: &[Watts],
    ) -> Vec<Watts> {
        assert_eq!(curves.len(), floors.len(), "one floor per server");
        const STEP: f64 = 5.0;
        let levels = (total.value() / STEP).floor().max(0.0) as usize;
        let mut best = vec![0.0f64; levels + 1];
        // `choice[b]` is `None` where no cap combination reaches budget
        // level `b` (that cell's value stays -inf); a backtrack through
        // such a cell would previously read a bogus index 0 and could
        // underflow `b` at near-floor budgets.
        let mut keep: Vec<Vec<Option<usize>>> = Vec::with_capacity(curves.len());
        for curve in curves {
            let mut next = vec![f64::NEG_INFINITY; levels + 1];
            let mut choice: Vec<Option<usize>> = vec![None; levels + 1];
            for b in 0..=levels {
                for (ci, (cap, value)) in curve.iter().enumerate() {
                    let need = (cap.value() / STEP).ceil() as usize;
                    if need <= b && best[b - need].is_finite() {
                        let v = best[b - need] + value;
                        if v > next[b] {
                            next[b] = v;
                            choice[b] = Some(ci);
                        }
                    }
                }
            }
            best = next;
            keep.push(choice);
        }
        // When even the per-server floors cannot fit (best is -inf at
        // the root), fall back to the floor for everyone.
        if !best[levels].is_finite() {
            return floors.to_vec();
        }
        let mut caps = floors.to_vec();
        let mut b = levels;
        for i in (0..curves.len()).rev() {
            let Some(ci) = keep[i][b] else {
                // A finite root guarantees a recorded choice at every
                // backtrack cell; guard anyway (NaN curve values can
                // break the invariant) and keep the floor fallback.
                return floors.to_vec();
            };
            caps[i] = curves[i][ci].0;
            let need = (caps[i].value() / STEP).ceil() as usize;
            let Some(rest) = b.checked_sub(need) else {
                return floors.to_vec();
            };
            b = rest;
        }
        caps
    }

    fn run_equal(
        &self,
        policy: ClusterPolicy,
        kind: PolicyKind,
        with_battery: bool,
        trace: &ClusterPowerTrace,
        dt: Seconds,
    ) -> ClusterReport {
        let managed = ManagedPolicy {
            label: policy,
            kind,
            with_battery,
            apportionment: Apportionment::Equal,
        };
        self.run_managed(managed, trace, dt)
    }

    /// The consolidation baseline, evaluated analytically: at each trace
    /// sample the budget powers `k = ⌊cap / 105 W⌋` servers (the rest are
    /// switched off entirely); applications migrate to the powered
    /// servers — two per server at full resources (the interference-aware
    /// placement the paper describes: the mixes are two-app
    /// co-locations), with an occasional third at reduced core count
    /// when substantial budget is left over; migration itself is assumed
    /// free (the paper notes this may not be feasible with large state).
    fn run_consolidation(&self, trace: &ClusterPowerTrace, dt: Seconds) -> ClusterReport {
        let spec = ServerSpec::xeon_e5_2620();
        let duration = trace.duration();
        let mixes = self.workload();
        let apps: Vec<AppProfile> = mixes
            .iter()
            .flat_map(|m| [m.app1.clone(), m.app2.clone()])
            .collect();
        let _ = self.seed; // placement is deterministic: apps in order
        let nocap: Vec<f64> = apps.iter().map(|p| p.uncapped(&spec).throughput).collect();
        // Normalized rate of an app demoted to 4 cores (third app on a
        // powered server).
        let reduced: Vec<f64> = apps
            .iter()
            .map(|p| {
                let knob = KnobSetting::max_for(&spec).with_cores(4.min(spec.max_app_cores()));
                p.evaluate(&spec, knob).throughput
            })
            .collect();

        let steps = (duration.value() / dt.value()).ceil() as u64;
        let simulated = Seconds::new(steps as f64 * dt.value());
        let mut ops = vec![0.0f64; apps.len()];
        let mut energy = Joules::ZERO;
        let mut now = Seconds::ZERO;
        for _ in 0..steps {
            let cap = trace.at(now);
            let k = ((cap.value() / SERVER_LOADED_W).floor() as usize).min(self.servers);
            // Interference-aware placement: two full-resource apps per
            // powered server (packing a third would contend for cores
            // and the local DIMM). A third app at reduced cores is only
            // admitted when the budget covers a further half server.
            let full_slots = 2 * k;
            let leftover = (cap.value() - k as f64 * SERVER_LOADED_W).max(0.0);
            let reduced_slots = ((leftover / 52.0).floor() as usize).min(k);
            for (i, _) in apps.iter().enumerate() {
                if i < full_slots {
                    ops[i] += nocap[i] * dt.value();
                } else if i < full_slots + reduced_slots {
                    ops[i] += reduced[i] * dt.value();
                }
            }
            let loaded = ((apps.len().min(full_slots + reduced_slots)) as f64 / 3.0).ceil();
            energy += Watts::new(SERVER_LOADED_W) * Seconds::new(dt.value()) * loaded.min(k as f64);
            now += dt;
        }

        let per_app_perf: Vec<f64> = ops
            .iter()
            .zip(&nocap)
            .map(|(o, r)| o / (r * simulated.value()))
            .collect();
        ClusterReport::from_parts(ClusterPolicy::ConsolidationMigration, per_app_perf, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_units::Ratio;

    fn short_trace(servers: usize, shave: f64) -> ClusterPowerTrace {
        ClusterPowerTrace::synthetic_diurnal(servers, Seconds::new(60.0), 3)
            .peak_shaved(Ratio::new(shave))
            .clamped_below(Watts::new(78.0 * servers as f64))
    }

    #[test]
    fn workload_assignment_cycles_table2() {
        let mgr = ClusterManager::new(17, 0);
        let w = mgr.workload();
        assert_eq!(w.len(), 17);
        assert_eq!(w[0].id.0, 1);
        assert_eq!(w[15].id.0, 1, "wraps after 15 mixes");
    }

    #[test]
    fn consolidation_perf_scales_with_cap() {
        let mgr = ClusterManager::new(4, 0);
        let mild = mgr.run(
            ClusterPolicy::ConsolidationMigration,
            &short_trace(4, 0.15),
            Seconds::new(0.5),
        );
        let harsh = mgr.run(
            ClusterPolicy::ConsolidationMigration,
            &short_trace(4, 0.45),
            Seconds::new(0.5),
        );
        assert!(mild.aggregate_normalized_perf > harsh.aggregate_normalized_perf);
        assert!(mild.aggregate_normalized_perf <= 1.0 + 1e-9);
        assert!(harsh.aggregate_normalized_perf > 0.2);
    }

    #[test]
    fn equal_rapl_runs_and_reports() {
        let mgr = ClusterManager::new(2, 0);
        let r = mgr.run(
            ClusterPolicy::EqualRapl,
            &short_trace(2, 0.15),
            Seconds::new(0.5),
        );
        assert!(r.aggregate_normalized_perf > 0.2, "{r:?}");
        assert!(r.energy.value() > 0.0);
        assert_eq!(r.per_app_perf.len(), 4);
    }

    #[test]
    fn ours_beats_rapl_under_stringent_shaving() {
        let mgr = ClusterManager::new(2, 0);
        let trace = short_trace(2, 0.45);
        let rapl = mgr.run(ClusterPolicy::EqualRapl, &trace, Seconds::new(0.5));
        let ours = mgr.run(ClusterPolicy::EqualOurs, &trace, Seconds::new(0.5));
        assert!(
            ours.aggregate_normalized_perf > rapl.aggregate_normalized_perf,
            "ours {} vs rapl {}",
            ours.aggregate_normalized_perf,
            rapl.aggregate_normalized_perf
        );
    }

    #[test]
    fn unequal_apportionment_beats_equal_under_stringency() {
        let mgr = ClusterManager::new(2, 0);
        let trace = short_trace(2, 0.45);
        let equal = mgr.run(ClusterPolicy::EqualOurs, &trace, Seconds::new(0.5));
        let unequal = mgr.run(ClusterPolicy::UnequalOurs, &trace, Seconds::new(0.5));
        assert!(
            unequal.aggregate_normalized_perf >= equal.aggregate_normalized_perf - 0.02,
            "unequal {:.3} vs equal {:.3}",
            unequal.aggregate_normalized_perf,
            equal.aggregate_normalized_perf
        );
    }

    #[test]
    fn cluster_dp_respects_the_total() {
        // Synthetic curves: server 0 is twice as valuable per watt.
        let curve = |scale: f64| -> Vec<(Watts, f64)> {
            ClusterManager::candidate_caps()
                .map(|c| (c, scale * (c.value() - 50.0)))
                .collect()
        };
        let curves = vec![curve(2.0), curve(1.0)];
        let caps = ClusterManager::apportion_cluster(&curves, Watts::new(170.0));
        let total: f64 = caps.iter().map(|c| c.value()).sum();
        assert!(total <= 170.0 + 1e-9);
        // The more valuable server gets the larger share.
        assert!(caps[0] >= caps[1], "{caps:?}");
        assert_eq!(caps[0], Watts::new(115.0));
    }

    #[test]
    fn cluster_dp_minimal_budget_backtracks_without_underflow() {
        // Near-floor budgets: intermediate DP cells are unreachable
        // (-inf) and the backtrack used to read a bogus choice index 0
        // there, underflowing `b`. Two servers need 100 W of floors.
        let curve: Vec<(Watts, f64)> = ClusterManager::candidate_caps()
            .map(|c| (c, c.value() - 50.0))
            .collect();
        let curves = vec![curve.clone(), curve.clone()];
        for total in [100.0, 100.1, 104.9, 105.0, 109.9] {
            let caps = ClusterManager::apportion_cluster(&curves, Watts::new(total));
            let sum: f64 = caps.iter().map(|c| c.value()).sum();
            assert!(sum <= total + 1e-9, "total {total}: {caps:?}");
            assert!(
                caps.iter().all(|c| *c >= Watts::new(50.0)),
                "total {total}: {caps:?}"
            );
        }
        // Exactly one 5 W increment above the floors: someone gets 55 W.
        let caps = ClusterManager::apportion_cluster(&curves, Watts::new(105.0));
        let sum: f64 = caps.iter().map(|c| c.value()).sum();
        assert_eq!(sum, 105.0, "{caps:?}");
    }

    #[test]
    fn cluster_dp_below_aggregate_floor_falls_back_to_floors() {
        let curve: Vec<(Watts, f64)> = ClusterManager::candidate_caps()
            .map(|c| (c, c.value()))
            .collect();
        let curves = vec![curve.clone(), curve.clone()];
        for total in [0.0, 49.0, 99.9] {
            let caps = ClusterManager::apportion_cluster(&curves, Watts::new(total));
            assert_eq!(caps, vec![Watts::new(50.0); 2], "total {total}");
        }
        // Degenerate inputs: no servers at all.
        assert!(ClusterManager::apportion_cluster(&[], Watts::new(500.0)).is_empty());
    }

    #[test]
    fn cluster_dp_nan_curve_values_fall_back_to_floors() {
        // NaN values poison the DP comparisons; the guard must fall back
        // to floors instead of panicking or underflowing.
        let bad: Vec<(Watts, f64)> = ClusterManager::candidate_caps()
            .map(|c| (c, f64::NAN))
            .collect();
        let curves = vec![bad.clone(), bad];
        let caps = ClusterManager::apportion_cluster(&curves, Watts::new(200.0));
        assert_eq!(caps, vec![Watts::new(50.0); 2]);
    }

    #[test]
    fn candidate_caps_for_matches_the_xeon_ladder() {
        let xeon: Vec<Watts> = ClusterManager::candidate_caps().collect();
        let derived = ClusterManager::candidate_caps_for(&ServerSpec::xeon_e5_2620());
        assert_eq!(derived.first(), xeon.first());
        // The derived ladder extends to rated power (120 W for the
        // Xeon); the classic ladder stops at 115 W within it.
        assert!(derived.len() >= xeon.len());
        assert!(xeon.iter().all(|c| derived.contains(c)));

        let edge = ClusterManager::candidate_caps_for(&ServerSpec::edge_low_idle());
        let big = ClusterManager::candidate_caps_for(&ServerSpec::throughput_highdyn());
        assert_eq!(edge.first(), Some(&Watts::new(25.0)));
        assert_eq!(big.first(), Some(&Watts::new(55.0)));
        assert!(edge.last().unwrap() < big.last().unwrap());
        assert!(edge.len() < big.len(), "edge ladder should be shorter");
    }

    #[test]
    fn heterogeneous_floors_back_the_dp_fallback() {
        let specs = [
            ServerSpec::edge_low_idle(),
            ServerSpec::throughput_highdyn(),
        ];
        let floors: Vec<Watts> = specs.iter().map(ClusterManager::cap_floor_for).collect();
        let curves: Vec<Vec<(Watts, f64)>> = specs
            .iter()
            .map(|s| {
                ClusterManager::candidate_caps_for(s)
                    .into_iter()
                    .map(|c| (c, c.value()))
                    .collect()
            })
            .collect();
        // Budget below the aggregate floor (25 + 55): per-SKU floors
        // come back, not the homogeneous 50 W.
        let caps =
            ClusterManager::apportion_cluster_with_floors(&curves, Watts::new(70.0), &floors);
        assert_eq!(caps, floors);
        // A workable budget splits on the 5 W grid, respects the total,
        // and gives the throughput SKU (better value at equal watts
        // here, and a taller ladder) at least its floor.
        let caps =
            ClusterManager::apportion_cluster_with_floors(&curves, Watts::new(180.0), &floors);
        let total: f64 = caps.iter().map(|c| c.value()).sum();
        assert!(total <= 180.0 + 1e-9, "{caps:?}");
        assert!(caps[0] >= floors[0] && caps[1] >= floors[1], "{caps:?}");
    }

    #[test]
    fn policy_names() {
        assert_eq!(ClusterPolicy::EqualRapl.name(), "Equal(RAPL)");
        assert_eq!(ClusterPolicy::EqualOurs.to_string(), "Equal(Ours)");
        assert_eq!(ClusterPolicy::UnequalOurs.name(), "Unequal(Ours)");
    }
}
