//! The cluster manager and the three evaluated cluster policies.

use powermed_core::coordinator::EsdParams;
use powermed_core::measurement::AppMeasurement;
use powermed_core::policy::{PolicyKind, PowerPolicy};
use powermed_core::runtime::PowerMediator;
use powermed_esd::{LeadAcidBattery, NoEsd};
use powermed_server::{KnobSetting, ServerSpec};
use powermed_sim::engine::ServerSim;
use powermed_units::{Joules, Ratio, Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};
use powermed_workloads::profile::AppProfile;
use serde::{Deserialize, Serialize};

use crate::trace::ClusterPowerTrace;

/// Nominal draw of one fully loaded server, used by the consolidation
/// baseline to decide how many servers the budget powers.
const SERVER_LOADED_W: f64 = 105.0;

/// Cluster-level power management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterPolicy {
    /// Even split; servers enforce with utility-unaware RAPL capping.
    EqualRapl,
    /// Even split; servers run `App+Res+ESD-Aware` mediation.
    EqualOurs,
    /// Power only as many servers as the budget allows, migrate
    /// applications to them, cap nothing.
    ConsolidationMigration,
    /// Extension beyond the paper (its future work (i)): the cluster
    /// manager apportions the cluster cap *unevenly* across servers by
    /// each server's own utility curve — the same marginal-utility
    /// reasoning the paper applies within a server, lifted one level up
    /// the power hierarchy. Servers still run `App+Res+ESD-Aware`.
    UnequalOurs,
}

impl ClusterPolicy {
    /// Display name as used in Fig. 12b.
    pub fn name(self) -> &'static str {
        match self {
            Self::EqualRapl => "Equal(RAPL)",
            Self::EqualOurs => "Equal(Ours)",
            Self::ConsolidationMigration => "Consolidation+Migration(no cap)",
            Self::UnequalOurs => "Unequal(Ours)",
        }
    }
}

impl core::fmt::Display for ClusterPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The strategy evaluated.
    pub policy: ClusterPolicy,
    /// Mean over all applications of throughput normalized to uncapped
    /// execution (the Fig. 12b y-axis).
    pub aggregate_normalized_perf: f64,
    /// Total cluster energy drawn over the run.
    pub energy: Joules,
    /// Performance per kilojoule (the power-efficiency metric behind
    /// the paper's 4%/12% efficiency claims).
    pub perf_per_kilojoule: f64,
    /// Per-application normalized performance.
    pub per_app_perf: Vec<f64>,
}

/// Drives a fixed fleet of shared servers through a cap schedule.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    servers: usize,
    seed: u64,
}

impl ClusterManager {
    /// A cluster of `servers` servers (the paper uses 10); `seed` keeps
    /// any tie-breaking deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize, seed: u64) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        Self { servers, seed }
    }

    /// The workload: server `i` hosts Table II mix `(i mod 15) + 1`.
    pub fn workload(&self) -> Vec<Mix> {
        (0..self.servers)
            .map(|i| mixes::mix((i % 15) + 1).expect("mix exists"))
            .collect()
    }

    /// Runs `policy` over the cap schedule `trace` with control step
    /// `dt`, returning the aggregate report.
    pub fn run(
        &self,
        policy: ClusterPolicy,
        trace: &ClusterPowerTrace,
        dt: Seconds,
    ) -> ClusterReport {
        match policy {
            ClusterPolicy::EqualRapl => {
                self.run_equal(policy, PolicyKind::UtilUnaware, false, trace, dt)
            }
            ClusterPolicy::EqualOurs => {
                self.run_equal(policy, PolicyKind::AppResEsdAware, true, trace, dt)
            }
            ClusterPolicy::ConsolidationMigration => self.run_consolidation(trace, dt),
            ClusterPolicy::UnequalOurs => self.run_unequal(trace, dt),
        }
    }

    /// The utility-aware apportionment extension: per-server value
    /// curves are computed from each server's application measurements,
    /// then the cluster cap is split by an exact knapsack-style DP over
    /// 5 W increments whenever the trace changes.
    fn run_unequal(&self, trace: &ClusterPowerTrace, dt: Seconds) -> ClusterReport {
        let spec = ServerSpec::xeon_e5_2620();
        let duration = trace.duration();
        let mixes = self.workload();

        let mut sims: Vec<ServerSim> = (0..self.servers)
            .map(|_| {
                ServerSim::new(
                    spec.clone(),
                    Box::new(LeadAcidBattery::server_ups().with_soc(0.5)),
                )
            })
            .collect();
        let initial_cap = trace.at(Seconds::ZERO) / self.servers as f64;
        let mut mediators: Vec<PowerMediator> = (0..self.servers)
            .map(|_| PowerMediator::new(PolicyKind::AppResEsdAware, spec.clone(), initial_cap))
            .collect();

        let mut nocap_rates: Vec<Vec<(String, f64)>> = Vec::with_capacity(self.servers);
        for (i, mix) in mixes.iter().enumerate() {
            for app in [&mix.app1, &mix.app2] {
                mediators[i]
                    .admit(&mut sims[i], app.clone())
                    .expect("two apps fit on a server");
            }
            nocap_rates.push(
                [&mix.app1, &mix.app2]
                    .iter()
                    .map(|p| (p.name().to_string(), p.uncapped(&spec).throughput))
                    .collect(),
            );
        }

        // Per-server value curves over candidate caps.
        let esd = EsdParams {
            efficiency: Ratio::new(0.75),
            max_discharge: Watts::new(100.0),
            max_charge: Watts::new(50.0),
        };
        let policy = PowerPolicy::new(PolicyKind::AppResEsdAware, spec.clone());
        let curves: Vec<Vec<(Watts, f64)>> = mixes
            .iter()
            .map(|mix| {
                let a = AppMeasurement::exhaustive(&spec, &mix.app1);
                let b = AppMeasurement::exhaustive(&spec, &mix.app2);
                let apps = [(mix.app1.name(), &a), (mix.app2.name(), &b)];
                Self::candidate_caps()
                    .map(|cap| {
                        let schedule = policy.plan(&apps, cap, Some(esd));
                        (cap, schedule.expected_mean_normalized(&apps))
                    })
                    .collect()
            })
            .collect();

        let steps = (duration.value() / dt.value()).ceil() as u64;
        let simulated = Seconds::new(steps as f64 * dt.value());
        let mut current_total = Watts::ZERO;
        let mut energy = Joules::ZERO;
        let mut now = Seconds::ZERO;
        for _ in 0..steps {
            let total = trace.at(now);
            if (total - current_total).abs() > Watts::new(1e-6) {
                current_total = total;
                let caps = Self::apportion_cluster(&curves, total);
                for (i, med) in mediators.iter_mut().enumerate() {
                    med.set_cap(&mut sims[i], caps[i]);
                }
            }
            for (i, med) in mediators.iter_mut().enumerate() {
                let report = med.step(&mut sims[i], dt);
                energy += report.net_power * dt;
            }
            now += dt;
        }

        let mut per_app_perf = Vec::new();
        for (i, rates) in nocap_rates.iter().enumerate() {
            for (name, rate) in rates {
                let done = sims[i].ops_done(name);
                per_app_perf.push(done / (rate * simulated.value()));
            }
        }
        Self::report(ClusterPolicy::UnequalOurs, per_app_perf, energy)
    }

    /// Candidate per-server caps: 50 W (parked at idle) through 115 W in
    /// 5 W steps.
    pub fn candidate_caps() -> impl Iterator<Item = Watts> {
        (0..=13).map(|i| Watts::new(50.0 + 5.0 * i as f64))
    }

    /// Exact DP split of `total` across servers, maximizing the sum of
    /// per-server values on 5 W granularity. Every server receives at
    /// least the 50 W idle floor — when `total` cannot even cover the
    /// fleet's aggregate idle power, the returned floors intentionally
    /// sum above `total` (such a cap is physically unenforceable by
    /// power management, mirroring the per-server floor semantics).
    pub fn apportion_cluster(curves: &[Vec<(Watts, f64)>], total: Watts) -> Vec<Watts> {
        const STEP: f64 = 5.0;
        let levels = (total.value() / STEP).floor().max(0.0) as usize;
        let mut best = vec![0.0f64; levels + 1];
        let mut keep: Vec<Vec<usize>> = Vec::with_capacity(curves.len());
        for curve in curves {
            let mut next = vec![f64::NEG_INFINITY; levels + 1];
            let mut choice = vec![0usize; levels + 1];
            for b in 0..=levels {
                for (ci, (cap, value)) in curve.iter().enumerate() {
                    let need = (cap.value() / STEP).ceil() as usize;
                    if need <= b {
                        let v = best[b - need] + value;
                        if v > next[b] {
                            next[b] = v;
                            choice[b] = ci;
                        }
                    }
                }
            }
            best = next;
            keep.push(choice);
        }
        // When even the per-server floors cannot fit (best is -inf at
        // the root), fall back to the floor for everyone.
        if !best[levels].is_finite() {
            return vec![Watts::new(50.0); curves.len()];
        }
        let mut caps = vec![Watts::new(50.0); curves.len()];
        let mut b = levels;
        for i in (0..curves.len()).rev() {
            let ci = keep[i][b];
            caps[i] = curves[i][ci].0;
            b -= (caps[i].value() / STEP).ceil() as usize;
        }
        caps
    }

    fn run_equal(
        &self,
        policy: ClusterPolicy,
        kind: PolicyKind,
        with_battery: bool,
        trace: &ClusterPowerTrace,
        dt: Seconds,
    ) -> ClusterReport {
        let spec = ServerSpec::xeon_e5_2620();
        let duration = trace.duration();
        let mixes = self.workload();

        let mut sims: Vec<ServerSim> = (0..self.servers)
            .map(|_| {
                if with_battery {
                    ServerSim::new(
                        spec.clone(),
                        Box::new(LeadAcidBattery::server_ups().with_soc(0.5)),
                    )
                } else {
                    ServerSim::new(spec.clone(), Box::new(NoEsd))
                }
            })
            .collect();

        let initial_cap = trace.at(Seconds::ZERO) / self.servers as f64;
        let mut mediators: Vec<PowerMediator> = (0..self.servers)
            .map(|_| PowerMediator::new(kind, spec.clone(), initial_cap))
            .collect();

        let mut nocap_rates: Vec<Vec<(String, f64)>> = Vec::with_capacity(self.servers);
        for (i, mix) in mixes.iter().enumerate() {
            for app in [&mix.app1, &mix.app2] {
                mediators[i]
                    .admit(&mut sims[i], app.clone())
                    .expect("two apps fit on a server");
            }
            nocap_rates.push(
                [&mix.app1, &mix.app2]
                    .iter()
                    .map(|p| (p.name().to_string(), p.uncapped(&spec).throughput))
                    .collect(),
            );
        }

        let steps = (duration.value() / dt.value()).ceil() as u64;
        let simulated = Seconds::new(steps as f64 * dt.value());
        let mut current_cap = initial_cap;
        let mut energy = Joules::ZERO;
        let mut now = Seconds::ZERO;
        for _ in 0..steps {
            let cap = trace.at(now) / self.servers as f64;
            if (cap - current_cap).abs() > Watts::new(1e-6) {
                current_cap = cap;
                for (i, med) in mediators.iter_mut().enumerate() {
                    med.set_cap(&mut sims[i], cap);
                }
            }
            for (i, med) in mediators.iter_mut().enumerate() {
                let report = med.step(&mut sims[i], dt);
                energy += report.net_power * dt;
            }
            now += dt;
        }

        let mut per_app_perf = Vec::new();
        for (i, rates) in nocap_rates.iter().enumerate() {
            for (name, rate) in rates {
                let done = sims[i].ops_done(name);
                per_app_perf.push(done / (rate * simulated.value()));
            }
        }
        Self::report(policy, per_app_perf, energy)
    }

    /// The consolidation baseline, evaluated analytically: at each trace
    /// sample the budget powers `k = ⌊cap / 105 W⌋` servers (the rest are
    /// switched off entirely); applications migrate to the powered
    /// servers — two per server at full resources (the interference-aware
    /// placement the paper describes: the mixes are two-app
    /// co-locations), with an occasional third at reduced core count
    /// when substantial budget is left over; migration itself is assumed
    /// free (the paper notes this may not be feasible with large state).
    fn run_consolidation(&self, trace: &ClusterPowerTrace, dt: Seconds) -> ClusterReport {
        let spec = ServerSpec::xeon_e5_2620();
        let duration = trace.duration();
        let mixes = self.workload();
        let apps: Vec<AppProfile> = mixes
            .iter()
            .flat_map(|m| [m.app1.clone(), m.app2.clone()])
            .collect();
        let _ = self.seed; // placement is deterministic: apps in order
        let nocap: Vec<f64> = apps.iter().map(|p| p.uncapped(&spec).throughput).collect();
        // Normalized rate of an app demoted to 4 cores (third app on a
        // powered server).
        let reduced: Vec<f64> = apps
            .iter()
            .map(|p| {
                let knob = KnobSetting::max_for(&spec).with_cores(4.min(spec.max_app_cores()));
                p.evaluate(&spec, knob).throughput
            })
            .collect();

        let steps = (duration.value() / dt.value()).ceil() as u64;
        let simulated = Seconds::new(steps as f64 * dt.value());
        let mut ops = vec![0.0f64; apps.len()];
        let mut energy = Joules::ZERO;
        let mut now = Seconds::ZERO;
        for _ in 0..steps {
            let cap = trace.at(now);
            let k = ((cap.value() / SERVER_LOADED_W).floor() as usize).min(self.servers);
            // Interference-aware placement: two full-resource apps per
            // powered server (packing a third would contend for cores
            // and the local DIMM). A third app at reduced cores is only
            // admitted when the budget covers a further half server.
            let full_slots = 2 * k;
            let leftover = (cap.value() - k as f64 * SERVER_LOADED_W).max(0.0);
            let reduced_slots = ((leftover / 52.0).floor() as usize).min(k);
            for (i, _) in apps.iter().enumerate() {
                if i < full_slots {
                    ops[i] += nocap[i] * dt.value();
                } else if i < full_slots + reduced_slots {
                    ops[i] += reduced[i] * dt.value();
                }
            }
            let loaded = ((apps.len().min(full_slots + reduced_slots)) as f64 / 3.0).ceil();
            energy += Watts::new(SERVER_LOADED_W) * Seconds::new(dt.value()) * loaded.min(k as f64);
            now += dt;
        }

        let per_app_perf: Vec<f64> = ops
            .iter()
            .zip(&nocap)
            .map(|(o, r)| o / (r * simulated.value()))
            .collect();
        Self::report(ClusterPolicy::ConsolidationMigration, per_app_perf, energy)
    }

    fn report(policy: ClusterPolicy, per_app_perf: Vec<f64>, energy: Joules) -> ClusterReport {
        let aggregate = if per_app_perf.is_empty() {
            0.0
        } else {
            per_app_perf.iter().sum::<f64>() / per_app_perf.len() as f64
        };
        let kj = (energy.value() / 1000.0).max(1e-9);
        ClusterReport {
            policy,
            aggregate_normalized_perf: aggregate,
            energy,
            perf_per_kilojoule: aggregate / kj,
            per_app_perf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_units::Ratio;

    fn short_trace(servers: usize, shave: f64) -> ClusterPowerTrace {
        ClusterPowerTrace::synthetic_diurnal(servers, Seconds::new(60.0), 3)
            .peak_shaved(Ratio::new(shave))
            .clamped_below(Watts::new(78.0 * servers as f64))
    }

    #[test]
    fn workload_assignment_cycles_table2() {
        let mgr = ClusterManager::new(17, 0);
        let w = mgr.workload();
        assert_eq!(w.len(), 17);
        assert_eq!(w[0].id.0, 1);
        assert_eq!(w[15].id.0, 1, "wraps after 15 mixes");
    }

    #[test]
    fn consolidation_perf_scales_with_cap() {
        let mgr = ClusterManager::new(4, 0);
        let mild = mgr.run(
            ClusterPolicy::ConsolidationMigration,
            &short_trace(4, 0.15),
            Seconds::new(0.5),
        );
        let harsh = mgr.run(
            ClusterPolicy::ConsolidationMigration,
            &short_trace(4, 0.45),
            Seconds::new(0.5),
        );
        assert!(mild.aggregate_normalized_perf > harsh.aggregate_normalized_perf);
        assert!(mild.aggregate_normalized_perf <= 1.0 + 1e-9);
        assert!(harsh.aggregate_normalized_perf > 0.2);
    }

    #[test]
    fn equal_rapl_runs_and_reports() {
        let mgr = ClusterManager::new(2, 0);
        let r = mgr.run(
            ClusterPolicy::EqualRapl,
            &short_trace(2, 0.15),
            Seconds::new(0.5),
        );
        assert!(r.aggregate_normalized_perf > 0.2, "{r:?}");
        assert!(r.energy.value() > 0.0);
        assert_eq!(r.per_app_perf.len(), 4);
    }

    #[test]
    fn ours_beats_rapl_under_stringent_shaving() {
        let mgr = ClusterManager::new(2, 0);
        let trace = short_trace(2, 0.45);
        let rapl = mgr.run(ClusterPolicy::EqualRapl, &trace, Seconds::new(0.5));
        let ours = mgr.run(ClusterPolicy::EqualOurs, &trace, Seconds::new(0.5));
        assert!(
            ours.aggregate_normalized_perf > rapl.aggregate_normalized_perf,
            "ours {} vs rapl {}",
            ours.aggregate_normalized_perf,
            rapl.aggregate_normalized_perf
        );
    }

    #[test]
    fn unequal_apportionment_beats_equal_under_stringency() {
        let mgr = ClusterManager::new(2, 0);
        let trace = short_trace(2, 0.45);
        let equal = mgr.run(ClusterPolicy::EqualOurs, &trace, Seconds::new(0.5));
        let unequal = mgr.run(ClusterPolicy::UnequalOurs, &trace, Seconds::new(0.5));
        assert!(
            unequal.aggregate_normalized_perf >= equal.aggregate_normalized_perf - 0.02,
            "unequal {:.3} vs equal {:.3}",
            unequal.aggregate_normalized_perf,
            equal.aggregate_normalized_perf
        );
    }

    #[test]
    fn cluster_dp_respects_the_total() {
        // Synthetic curves: server 0 is twice as valuable per watt.
        let curve = |scale: f64| -> Vec<(Watts, f64)> {
            ClusterManager::candidate_caps()
                .map(|c| (c, scale * (c.value() - 50.0)))
                .collect()
        };
        let curves = vec![curve(2.0), curve(1.0)];
        let caps = ClusterManager::apportion_cluster(&curves, Watts::new(170.0));
        let total: f64 = caps.iter().map(|c| c.value()).sum();
        assert!(total <= 170.0 + 1e-9);
        // The more valuable server gets the larger share.
        assert!(caps[0] >= caps[1], "{caps:?}");
        assert_eq!(caps[0], Watts::new(115.0));
    }

    #[test]
    fn policy_names() {
        assert_eq!(ClusterPolicy::EqualRapl.name(), "Equal(RAPL)");
        assert_eq!(ClusterPolicy::EqualOurs.to_string(), "Equal(Ours)");
        assert_eq!(ClusterPolicy::UnequalOurs.name(), "Unequal(Ours)");
    }
}
