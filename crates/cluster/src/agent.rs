//! The per-server agent of the cluster control plane.
//!
//! Each server runs one [`ServerAgent`]: the server simulation plus its
//! [`PowerMediator`], driven by cap-assignment downlinks from the
//! cluster manager. The agent is the *enforcement* end of the control
//! plane, so it is also where partition safety lives: a resilient agent
//! that stops hearing from the manager falls back to a conservative
//! local cap — the last acknowledged share, decaying toward the idle
//! floor — so the cluster stays under budget even when the agent is cut
//! off. A naive agent simply applies whatever arrives, in arrival
//! order, and keeps its stale cap forever when partitioned.
//!
//! Node churn is modelled by [`ServerAgent::crash`] /
//! [`ServerAgent::restart`]: a restart rebuilds the whole per-server
//! stack through [`crate::fleet::build_server`] (applications restart
//! from scratch, the ESD resets to its boot state of charge), while
//! completed work survives in an accumulator so normalized-throughput
//! scoring spans incarnations.

use std::collections::BTreeMap;

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_disagg::EstimatorConfig;
use powermed_profiles::{ProbeSplit, ProfileDigest, ProfileStore};
use powermed_server::ServerSpec;
use powermed_sim::engine::{ServerSim, StepReport};
use powermed_telemetry::journal::{JournalDigest, Obs, ObsEvent};
use powermed_telemetry::ProfileStoreStats;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::Mix;

use crate::control::{Downlink, WarmStartOptions};
use crate::fleet::{self, WarmBoot};

/// Tuning of the resilient agent's fallback behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// The manager's heartbeat interval in control steps, used to
    /// convert downlink silence into missed heartbeats. Must match
    /// [`crate::control::ManagerConfig::heartbeat_interval_steps`].
    pub heartbeat_interval_steps: u64,
    /// Missed heartbeats before the fallback cap engages. The default
    /// waits out a manager failover (crash detection plus standby
    /// takeover spans ~10-15 s) so a brief control-plane outage does not
    /// decay the whole fleet to the floor, while a genuinely partitioned
    /// node still decays to the floor well before the manager
    /// redistributes its share at
    /// [`crate::control::ManagerConfig::reapportion_after_steps`].
    pub fallback_after_misses: u64,
    /// Watts removed from the fallback cap per elapsed heartbeat
    /// interval while the silence lasts.
    pub fallback_decay: Watts,
    /// The idle floor the fallback decays toward (a parked server).
    pub floor: Watts,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval_steps: 4,
            fallback_after_misses: 6,
            fallback_decay: Watts::new(10.0),
            floor: Watts::new(50.0),
        }
    }
}

/// One server's agent: simulation, mediator, and fallback state.
#[derive(Debug)]
pub struct ServerAgent {
    spec: ServerSpec,
    mix: Mix,
    kind: PolicyKind,
    with_battery: bool,
    resilient: bool,
    config: AgentConfig,
    sim: ServerSim,
    mediator: PowerMediator,
    /// The cap currently in force on this server.
    current_cap: Watts,
    /// Highest assignment epoch applied (resilient agents discard
    /// reordered stale assignments below it).
    last_epoch: u64,
    /// Control steps since any downlink arrived.
    steps_since_downlink: u64,
    /// Set while the agent runs on a self-chosen cap (fallback, or a
    /// fresh restart booted at the floor): the next downlink is applied
    /// even if its epoch is not newer.
    needs_cap: bool,
    fallback_engaged: bool,
    /// While the facility breaker's emergency clamp is in force, the cap
    /// to restore on release. Downlinks received during the hold update
    /// the restore target instead of the mediator.
    clamped: Option<Watts>,
    /// Operations completed by previous incarnations, per app.
    ops_before: BTreeMap<String, f64>,
    heartbeat_misses: u64,
    fallback_engagements: u64,
    /// Fleet-wide provenance id stamped on profiles this server measures.
    server_id: u64,
    /// Online calibration + knowledge-plane configuration, if enabled.
    warm: Option<WarmStartOptions>,
    /// Crash-durable store image: taken on [`ServerAgent::crash`],
    /// restored by [`ServerAgent::restart`] (local disk survives a
    /// reboot even though the applications and ESD state do not).
    store_snapshot: Option<String>,
    /// Probe accounting banked from previous incarnations.
    probes_before: ProbeSplit,
    /// Store counters banked from previous incarnations.
    store_stats_before: ProfileStoreStats,
    /// Flight-recorder handle, re-wired onto every incarnation's
    /// mediator and simulation. `None` (the default) is zero-cost.
    obs: Option<Obs>,
    /// Fleet flight recorder: first journal seq the manager has *not*
    /// acked yet — where the next shipped digest starts. Persisted
    /// across crash/restart like the ring itself (local disk).
    journal_acked: u64,
    /// Epoch of the downlink the ack watermark was adopted from. After
    /// a manager failover a fresh-epoch downlink may legitimately carry
    /// a *lower* watermark (the standby lost unacked merges); adopting
    /// it re-ships records the idempotent fleet merge dedups, while a
    /// stale reordered downlink at an old epoch cannot regress the ack.
    ack_epoch: u64,
    /// Local journal clock: advances with every step, resynced to fleet
    /// time by the run loop when the node reboots.
    now: Seconds,
    /// Non-intrusive estimation configuration, re-attached to every
    /// incarnation's mediator. `None` (the default) is the oracle fleet.
    estimation: Option<EstimatorConfig>,
}

impl ServerAgent {
    /// Boots the agent: builds the server stack and admits the mix.
    pub fn new(
        spec: &ServerSpec,
        mix: &Mix,
        kind: PolicyKind,
        with_battery: bool,
        initial_cap: Watts,
        resilient: bool,
        config: AgentConfig,
    ) -> Self {
        Self::new_with(
            spec,
            mix,
            kind,
            with_battery,
            initial_cap,
            resilient,
            config,
            0,
            None,
        )
    }

    /// [`ServerAgent::new`] with a fleet-wide `server_id` and optional
    /// warm-start configuration (online calibration + knowledge plane).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with(
        spec: &ServerSpec,
        mix: &Mix,
        kind: PolicyKind,
        with_battery: bool,
        initial_cap: Watts,
        resilient: bool,
        config: AgentConfig,
        server_id: u64,
        warm: Option<&WarmStartOptions>,
    ) -> Self {
        let boot = warm.map(|w| WarmBoot {
            store: w.store.map(ProfileStore::new),
            server_id,
            sampling_fraction: w.sampling_fraction,
        });
        let (sim, mediator) =
            fleet::build_server_with(spec, mix, kind, with_battery, initial_cap, boot);
        Self {
            spec: spec.clone(),
            mix: mix.clone(),
            kind,
            with_battery,
            resilient,
            config,
            sim,
            mediator,
            current_cap: initial_cap,
            last_epoch: 0,
            steps_since_downlink: 0,
            needs_cap: false,
            fallback_engaged: false,
            clamped: None,
            ops_before: BTreeMap::new(),
            heartbeat_misses: 0,
            fallback_engagements: 0,
            server_id,
            warm: warm.cloned(),
            store_snapshot: None,
            probes_before: ProbeSplit::default(),
            store_stats_before: ProfileStoreStats::default(),
            obs: None,
            journal_acked: 0,
            ack_epoch: 0,
            now: Seconds::ZERO,
            estimation: None,
        }
    }

    /// Attaches a flight-recorder handle to this agent's mediator and
    /// simulation (and to every future incarnation after a restart).
    pub fn set_observability(&mut self, obs: Obs) {
        self.mediator.set_observability(obs.clone());
        self.sim.set_observability(obs.clone());
        self.obs = Some(obs);
    }

    /// Switches this agent's mediator (and every future incarnation's)
    /// to non-intrusive estimation: the policy stack plans on
    /// disaggregated per-app shares instead of the oracle breakdown.
    pub fn enable_estimation(&mut self, config: EstimatorConfig) {
        self.mediator.set_estimation(config);
        self.estimation = Some(config);
    }

    /// Estimated per-app dynamic shares from the latest poll, in watts
    /// (empty until the first estimate, or when estimation is off) —
    /// the uplink payload a real deployment can report without per-app
    /// power meters.
    pub fn estimated_shares(&self) -> Vec<(String, f64)> {
        self.mediator
            .last_estimate()
            .map(|eb| {
                eb.apps
                    .iter()
                    .map(|(name, share)| (name.clone(), share.watts))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The cap currently enforced on this server.
    pub fn current_cap(&self) -> Watts {
        self.current_cap
    }

    /// Whether the conservative local fallback cap is in force.
    pub fn fallback_engaged(&self) -> bool {
        self.fallback_engaged
    }

    /// Heartbeat intervals that elapsed with no downlink at all.
    pub fn heartbeat_misses(&self) -> u64 {
        self.heartbeat_misses
    }

    /// Times the fallback cap engaged.
    pub fn fallback_engagements(&self) -> u64 {
        self.fallback_engagements
    }

    /// Plans computed by this incarnation's mediator (re-planning on
    /// every duplicate downlink is the naive agent's hidden cost).
    pub fn replans(&self) -> usize {
        self.mediator.replans()
    }

    /// Handles the downlinks delivered this step.
    ///
    /// Resilient: any delivery resets the silence counter; the
    /// highest-epoch message is applied when its epoch is newer than the
    /// last applied one (or not older, while the agent runs on a
    /// self-chosen fallback/boot cap), so dropped assignments are
    /// repaired by the next heartbeat and reordered stale assignments
    /// are discarded. A repair downlink whose cap the agent already
    /// enforces is acknowledged without touching the mediator: re-sent
    /// state carries nothing to fix, and a re-plan is not free. Naive:
    /// every message is applied in arrival order — reordering regresses
    /// the cap, duplicates re-actuate, and nothing repairs a drop.
    pub fn receive(&mut self, msgs: &[Downlink]) {
        if msgs.is_empty() {
            return;
        }
        // Knowledge-plane payloads merge unconditionally — digests form
        // a semilattice, so even a stale or reordered downlink can only
        // add knowledge, never regress it.
        for m in msgs {
            if !m.profiles.is_empty() {
                self.mediator.absorb_digests(&m.profiles);
            }
        }
        if let Some(freshest) = msgs.iter().map(|m| m.epoch).max() {
            self.mediator.set_store_epoch(freshest);
            // Journal records from here on carry the adopted epoch, so
            // `doctor` can correlate decisions with assignment waves.
            if let Some(obs) = self.obs.as_ref() {
                obs.set_epoch(freshest);
            }
        }
        // Adopt the freshest ack watermark (lexicographic on
        // (epoch, ack)): a newer epoch always wins even with a lower
        // watermark — that is a failed-over manager asking for a
        // harmless re-ship — while within an epoch the watermark only
        // advances.
        if let Some(ack) = msgs.iter().map(|m| (m.epoch, m.journal_acked)).max() {
            if ack > (self.ack_epoch, self.journal_acked) {
                (self.ack_epoch, self.journal_acked) = ack;
            }
        }
        if !self.resilient {
            for m in msgs {
                if let Some(target) = &mut self.clamped {
                    *target = m.cap;
                } else {
                    self.apply(m.cap);
                }
            }
            return;
        }
        self.steps_since_downlink = 0;
        let best = msgs.iter().max_by_key(|m| m.epoch).expect("non-empty");
        let best = Downlink::assignment(best.epoch, best.cap, best.repair);
        let fresh =
            best.epoch > self.last_epoch || (self.needs_cap && best.epoch >= self.last_epoch);
        if fresh {
            if self.fallback_engaged {
                // The chain-closing record for `doctor --explain
                // fallback-cap`: the manager is heard again and hands
                // the assigned share back.
                if let Some(obs) = self.obs.as_ref() {
                    obs.emit(
                        self.now,
                        ObsEvent::FallbackRelease {
                            cap_w: best.cap.value(),
                        },
                    );
                }
            }
            self.last_epoch = best.epoch;
            self.needs_cap = false;
            self.fallback_engaged = false;
            if let Some(target) = &mut self.clamped {
                // The breaker outranks the manager for the duration of
                // the hold: remember the assignment, enforce the clamp.
                *target = best.cap;
            } else if best.repair && (best.cap - self.current_cap).abs() <= Watts::new(1e-6) {
                // An equal-value repair has nothing to fix even when the
                // agent flagged itself: an engaged-but-undecayed fallback
                // or a boot share that matches the floor left the
                // mediator exactly where the assignment puts it.
                self.current_cap = best.cap;
            } else {
                self.apply(best.cap);
            }
        }
    }

    /// The facility breaker tripped: slam this server to `floor` until
    /// [`ServerAgent::emergency_release`], remembering the current cap
    /// as the restore target. Idempotent while the clamp is in force.
    pub fn emergency_clamp(&mut self, floor: Watts) {
        if self.clamped.is_none() {
            let restore = self.current_cap;
            self.apply(floor);
            self.clamped = Some(restore);
        }
    }

    /// The breaker's cooldown expired: restore the pre-trip cap (or the
    /// latest assignment that arrived during the hold). A resilient
    /// agent also flags itself so the next heartbeat corrects any
    /// staleness the hold concealed.
    pub fn emergency_release(&mut self) {
        if let Some(restore) = self.clamped.take() {
            if (restore - self.current_cap).abs() > Watts::new(1e-6) {
                self.apply(restore);
            } else {
                self.current_cap = restore;
            }
            if self.resilient {
                self.needs_cap = true;
            }
        }
    }

    fn apply(&mut self, cap: Watts) {
        self.current_cap = cap;
        self.mediator.set_cap(&mut self.sim, cap);
    }

    /// Runs one control step, first advancing the fallback bookkeeping
    /// (resilient only). Returns the simulation step report; the caller
    /// accounts energy from its `net_power`.
    pub fn step(&mut self, dt: Seconds) -> StepReport {
        if self.resilient {
            self.steps_since_downlink += 1;
            let interval = self.config.heartbeat_interval_steps;
            // A heartbeat is overdue once a full interval elapsed beyond
            // the expected delivery step (the first interval is grace:
            // in-flight delays are not misses).
            if interval > 0
                && self.steps_since_downlink.is_multiple_of(interval)
                && self.steps_since_downlink >= 2 * interval
            {
                self.heartbeat_misses += 1;
                let misses = self.steps_since_downlink / interval - 1;
                if let Some(obs) = self.obs.as_ref() {
                    obs.emit(self.now, ObsEvent::HeartbeatMissed { misses });
                }
                if misses >= self.config.fallback_after_misses {
                    if !self.fallback_engaged {
                        // Engage on the last acked share; decay starts at
                        // the next silent interval.
                        self.fallback_engaged = true;
                        self.needs_cap = true;
                        self.fallback_engagements += 1;
                        if let Some(obs) = self.obs.as_ref() {
                            obs.emit(
                                self.now,
                                ObsEvent::FallbackEngage {
                                    cap_w: self.current_cap.value(),
                                },
                            );
                        }
                    } else {
                        let next = Watts::new(
                            (self.current_cap - self.config.fallback_decay)
                                .value()
                                .max(self.config.floor.value()),
                        );
                        if (self.current_cap - next).abs() > Watts::new(1e-6) {
                            self.apply(next);
                            if let Some(obs) = self.obs.as_ref() {
                                obs.emit(
                                    self.now,
                                    ObsEvent::FallbackDecay {
                                        cap_w: next.value(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        let report = self.mediator.step(&mut self.sim, dt);
        self.now += dt;
        report
    }

    /// The node crashed: bank the work and probe accounting completed so
    /// far and snapshot the knowledge-plane store (local disk survives a
    /// reboot). The stale simulation stays in place until
    /// [`ServerAgent::restart`] rebuilds it; the run loop must not step
    /// a crashed agent.
    pub fn crash(&mut self) {
        for app in self.mix.apps() {
            *self.ops_before.entry(app.name().to_string()).or_default() +=
                self.sim.ops_done(app.name());
        }
        self.probes_before = self.probes_before.merged(&self.mediator.probe_split());
        self.store_stats_before = self.store_stats_before.merged(&self.mediator.store_stats());
        if let Some(snapshot) = self.mediator.store_snapshot_json() {
            self.store_snapshot = Some(snapshot);
        }
    }

    /// The node restarts: applications restart from scratch and the ESD
    /// resets to its boot state of charge. A resilient node boots at the
    /// conservative idle floor and waits for the next heartbeat to learn
    /// its share; a naive node re-applies its stale persisted cap. A
    /// warm-start node restores its store snapshot, so the re-admission
    /// consults everything the previous incarnation knew.
    pub fn restart(&mut self) {
        let boot_cap = if self.resilient {
            self.config.floor
        } else {
            self.current_cap
        };
        let boot = self.warm.as_ref().map(|w| WarmBoot {
            store: w.store.map(|config| {
                self.store_snapshot
                    .as_deref()
                    .and_then(ProfileStore::from_json)
                    .unwrap_or_else(|| ProfileStore::new(config))
            }),
            server_id: self.server_id,
            sampling_fraction: w.sampling_fraction,
        });
        let (sim, mediator) = fleet::build_server_with(
            &self.spec,
            &self.mix,
            self.kind,
            self.with_battery,
            boot_cap,
            boot,
        );
        self.sim = sim;
        self.mediator = mediator;
        if let Some(obs) = self.obs.as_ref() {
            self.mediator.set_observability(obs.clone());
            self.sim.set_observability(obs.clone());
        }
        if let Some(config) = self.estimation {
            self.mediator.set_estimation(config);
        }
        self.current_cap = boot_cap;
        self.steps_since_downlink = 0;
        self.needs_cap = self.resilient;
        self.fallback_engaged = false;
        self.clamped = None;
    }

    /// Operations completed by `app` across all incarnations.
    pub fn total_ops(&self, app: &str) -> f64 {
        self.ops_before.get(app).copied().unwrap_or(0.0) + self.sim.ops_done(app)
    }

    /// Drains the profile digests published since the last drain (the
    /// uplink's knowledge-plane payload).
    pub fn take_profile_digests(&mut self) -> Vec<ProfileDigest> {
        self.mediator.take_store_outbox()
    }

    /// Probe accounting across all incarnations.
    pub fn probe_split(&self) -> ProbeSplit {
        self.probes_before.merged(&self.mediator.probe_split())
    }

    /// Store event counters across all incarnations.
    pub fn store_stats(&self) -> ProfileStoreStats {
        self.store_stats_before.merged(&self.mediator.store_stats())
    }

    /// The current incarnation's store contents (empty without a store).
    pub fn store_digests(&self) -> Vec<ProfileDigest> {
        self.mediator
            .profile_store()
            .map(ProfileStore::digests)
            .unwrap_or_default()
    }

    /// Resyncs the journal clock to fleet time (called by the run loop
    /// when a rebooted node rejoins: its clock did not advance while it
    /// was down). A pure timestamp source — never read by physics or
    /// policy, so it is behavior-free in every mode.
    pub fn sync_clock(&mut self, now: Seconds) {
        self.now = now;
    }

    /// The journal delta since the manager's last ack, size-capped to
    /// `max_bytes` — the uplink's flight-recorder payload. `None`
    /// without a journal. Non-draining: the watermark only advances
    /// when an ack rides back on a downlink, so unacked records are
    /// re-shipped every wave (the fleet merge dedups them).
    pub fn ship_journal(&self, max_bytes: usize) -> Option<JournalDigest> {
        self.obs
            .as_ref()
            .map(|obs| obs.digest_since(self.server_id, self.journal_acked, max_bytes))
            .filter(|d| !d.is_empty())
    }

    /// First journal seq the manager has not acked yet.
    pub fn journal_acked(&self) -> u64 {
        self.journal_acked
    }

    /// Forces E4 drift on the server's first app: its profile is
    /// tombstoned fleet-wide and re-measured. Returns `false` when the
    /// app is not resident (e.g. the node is mid-outage).
    pub fn force_drift(&mut self) -> bool {
        let name = self.mix.app1.name().to_string();
        self.mediator.recalibrate(&mut self.sim, &name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::mixes;

    const DT: Seconds = Seconds::new(0.5);

    fn agent(resilient: bool) -> ServerAgent {
        ServerAgent::new(
            &ServerSpec::xeon_e5_2620(),
            &mixes::mix(1).unwrap(),
            PolicyKind::AppResAware,
            false,
            Watts::new(100.0),
            resilient,
            AgentConfig::default(),
        )
    }

    #[test]
    fn resilient_discards_reordered_stale_assignments() {
        let mut a = agent(true);
        a.receive(&[Downlink::assignment(5, Watts::new(90.0), false)]);
        assert_eq!(a.current_cap(), Watts::new(90.0));
        // A delayed epoch-3 assignment arrives later: discarded.
        a.receive(&[Downlink::assignment(3, Watts::new(110.0), false)]);
        assert_eq!(a.current_cap(), Watts::new(90.0));
        // The naive agent applies it and regresses.
        let mut n = agent(false);
        n.receive(&[Downlink::assignment(5, Watts::new(90.0), false)]);
        n.receive(&[Downlink::assignment(3, Watts::new(110.0), false)]);
        assert_eq!(n.current_cap(), Watts::new(110.0));
    }

    #[test]
    fn silence_engages_fallback_and_decays_to_the_floor() {
        let mut a = agent(true);
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        // Total silence: the fallback engages after the configured
        // misses, then decays 10 W per interval down to the 50 W floor.
        for _ in 0..60 {
            a.step(DT);
        }
        assert!(a.fallback_engaged());
        assert_eq!(a.fallback_engagements(), 1);
        assert!(a.heartbeat_misses() >= 3);
        assert_eq!(a.current_cap(), Watts::new(50.0));
        // The next heartbeat (same epoch — nothing was reapportioned)
        // restores the manager's cap because the agent flagged itself.
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        assert!(!a.fallback_engaged());
        assert_eq!(a.current_cap(), Watts::new(100.0));
    }

    #[test]
    fn on_time_heartbeats_never_count_misses() {
        let mut a = agent(true);
        for step in 0..40u64 {
            if step % 4 == 0 {
                a.receive(&[Downlink::assignment(0, Watts::new(100.0), false)]);
            }
            a.step(DT);
        }
        assert_eq!(a.heartbeat_misses(), 0);
        assert!(!a.fallback_engaged());
    }

    #[test]
    fn restart_banks_ops_and_boots_conservatively() {
        let mut a = agent(true);
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..20 {
            a.step(DT);
        }
        let mix = mixes::mix(1).unwrap();
        let done_before: f64 = mix.apps().iter().map(|p| a.total_ops(p.name())).sum();
        assert!(done_before > 0.0);
        a.crash();
        a.restart();
        assert_eq!(
            a.current_cap(),
            Watts::new(50.0),
            "resilient reboot starts at the floor"
        );
        let banked: f64 = mix.apps().iter().map(|p| a.total_ops(p.name())).sum();
        assert!((banked - done_before).abs() < 1e-9, "work survives");
        // The next heartbeat hands the share back even at an old epoch.
        a.receive(&[Downlink::assignment(1, Watts::new(95.0), false)]);
        assert_eq!(a.current_cap(), Watts::new(95.0));
        // A naive reboot re-applies the stale persisted cap instead.
        let mut n = agent(false);
        n.receive(&[Downlink::assignment(1, Watts::new(110.0), false)]);
        n.crash();
        n.restart();
        assert_eq!(n.current_cap(), Watts::new(110.0));
    }
    #[test]
    fn settled_agent_acknowledges_same_value_repairs_without_replanning() {
        let mut a = agent(true);
        a.receive(&[Downlink::assignment(1, Watts::new(90.0), false)]);
        let planned = a.replans();
        // A failover or membership re-broadcast re-sends the same cap at
        // a fresh epoch: the epoch advances but the mediator is left
        // alone.
        a.receive(&[Downlink::assignment(2, Watts::new(90.0), true)]);
        assert_eq!(a.replans(), planned, "no re-plan for re-sent state");
        assert_eq!(a.current_cap(), Watts::new(90.0));
        // A repair carrying a *different* value is a real correction.
        a.receive(&[Downlink::assignment(3, Watts::new(80.0), true)]);
        assert!(a.replans() > planned);
        assert_eq!(a.current_cap(), Watts::new(80.0));
        // A stale-epoch repair is discarded like any stale downlink.
        a.receive(&[Downlink::assignment(2, Watts::new(120.0), true)]);
        assert_eq!(a.current_cap(), Watts::new(80.0));
        // The naive agent re-plans on every duplicate it receives.
        let mut n = agent(false);
        n.receive(&[Downlink::assignment(1, Watts::new(90.0), false)]);
        let planned = n.replans();
        n.receive(&[Downlink::assignment(1, Watts::new(90.0), false)]);
        assert!(n.replans() > planned);
    }

    #[test]
    fn estimation_survives_restart_and_reports_shares() {
        let mut a = agent(true);
        a.enable_estimation(EstimatorConfig::default());
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..10 {
            a.step(DT);
        }
        let shares = a.estimated_shares();
        assert_eq!(shares.len(), 2, "one share per admitted app");
        assert!(shares.iter().all(|(_, w)| *w >= 0.0));
        a.crash();
        a.restart();
        assert!(
            a.estimated_shares().is_empty(),
            "a fresh incarnation has not estimated yet"
        );
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..10 {
            a.step(DT);
        }
        assert_eq!(
            a.estimated_shares().len(),
            2,
            "estimation re-attaches across a node restart"
        );
    }

    #[test]
    fn oracle_agent_reports_no_shares() {
        let mut a = agent(true);
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..5 {
            a.step(DT);
        }
        assert!(a.estimated_shares().is_empty());
    }

    #[test]
    fn fallback_lifecycle_is_journalled() {
        use powermed_telemetry::journal::ObsConfig;
        let mut a = agent(true);
        let obs = Obs::new(ObsConfig::default());
        a.set_observability(obs.clone());
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..60 {
            a.step(DT);
        }
        assert!(a.fallback_engaged());
        let kinds: Vec<&str> = obs
            .journal_snapshot()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert!(kinds.contains(&"heartbeat_missed"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"fallback_engage"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"fallback_decay"), "kinds: {kinds:?}");
        // The silence chain closes when the manager is heard again.
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        let release = obs
            .journal_snapshot()
            .into_iter()
            .find(|r| r.event.kind() == "fallback_release")
            .expect("release journalled");
        assert!(
            matches!(release.event, ObsEvent::FallbackRelease { cap_w } if cap_w == 100.0),
            "release restores the assigned share: {:?}",
            release.event
        );
        // Decay steps are timestamped with the agent's local clock.
        assert!(release.at > Seconds::ZERO);
    }

    #[test]
    fn ack_watermark_adopts_newer_epochs_even_when_they_rewind() {
        let mut a = agent(true);
        let down = |epoch: u64, acked: u64| Downlink {
            journal_acked: acked,
            ..Downlink::assignment(epoch, Watts::new(100.0), false)
        };
        a.receive(&[down(1, 7)]);
        assert_eq!(a.journal_acked(), 7);
        // Within an epoch the watermark only advances.
        a.receive(&[down(1, 3)]);
        assert_eq!(a.journal_acked(), 7);
        // A failed-over manager at a fresh epoch may ack lower — adopt
        // it (the re-ship repopulates its restored timeline).
        a.receive(&[down(2, 2)]);
        assert_eq!(a.journal_acked(), 2);
        // A stale reordered downlink cannot regress the ack.
        a.receive(&[down(1, 9)]);
        assert_eq!(a.journal_acked(), 2);
    }

    #[test]
    fn ship_journal_is_a_non_draining_since_ack_delta() {
        use powermed_telemetry::journal::ObsConfig;
        let mut a = agent(true);
        assert!(
            a.ship_journal(8192).is_none(),
            "no journal, nothing to ship"
        );
        let obs = Obs::new(ObsConfig::default());
        a.set_observability(obs.clone());
        a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
        for _ in 0..4 {
            a.step(DT);
        }
        let first = a.ship_journal(1 << 20).expect("records to ship");
        assert!(!first.entries.is_empty());
        assert_eq!(first.since, 0);
        // Unacked: the next wave re-ships the identical digest.
        assert_eq!(a.ship_journal(1 << 20), Some(first.clone()));
        // Acked: the next digest is a delta past the watermark.
        let acked = first.ack_to();
        a.receive(&[Downlink {
            journal_acked: acked,
            ..Downlink::assignment(2, Watts::new(100.0), false)
        }]);
        let next = a.ship_journal(1 << 20);
        assert!(next
            .iter()
            .all(|d| d.since == acked && d.entries.iter().all(|r| r.seq >= acked)));
    }

    #[test]
    fn emergency_clamp_outranks_downlinks_until_release() {
        for resilient in [true, false] {
            let mut a = agent(resilient);
            a.receive(&[Downlink::assignment(1, Watts::new(100.0), false)]);
            a.emergency_clamp(Watts::new(50.0));
            assert_eq!(a.current_cap(), Watts::new(50.0));
            // A fresh assignment during the hold must not lift the
            // clamp, but becomes the restore target.
            a.receive(&[Downlink::assignment(2, Watts::new(90.0), false)]);
            assert_eq!(a.current_cap(), Watts::new(50.0));
            // Clamping is idempotent while the hold lasts.
            a.emergency_clamp(Watts::new(50.0));
            a.emergency_release();
            assert_eq!(a.current_cap(), Watts::new(90.0));
            // A release with no clamp in force is a no-op.
            a.emergency_release();
            assert_eq!(a.current_cap(), Watts::new(90.0));
        }
    }
}
