//! Knowledge-plane store accounting.
//!
//! The fleet-wide profile store (see `powermed-profiles`) counts every
//! lookup, invalidation and eviction it performs in a
//! [`ProfileStoreStats`]. Like the fault counters in [`crate::faults`],
//! it is a plain counter struct so experiments can diff it across runs,
//! and its owner surfaces it through the
//! [`crate::recorder::TraceRecorder`] as time series.

use serde::{Deserialize, Serialize};

/// Counters for a profile knowledge-plane store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProfileStoreStats {
    /// Confident lookups: an admission found a usable stored profile.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, decayed below the
    /// confidence threshold, or invalidated).
    pub misses: u64,
    /// Fleet-wide invalidations (E4 drift downgraded a fingerprint).
    pub invalidations: u64,
    /// Entries evicted to stay within the store's capacity bound.
    pub evictions: u64,
    /// Fresh entries inserted (first sighting of a fingerprint).
    pub inserts: u64,
    /// Version merges applied to an already-present fingerprint.
    pub merges: u64,
    /// Approximate resident size of the stored entries, in bytes.
    pub bytes: u64,
}

impl ProfileStoreStats {
    /// Total discrete store events (resident bytes are a gauge, not an
    /// event, and excluded).
    pub fn total_events(&self) -> u64 {
        self.hits + self.misses + self.invalidations + self.evictions + self.inserts + self.merges
    }

    /// Component-wise sum — used to aggregate per-server stores into a
    /// fleet total.
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            evictions: self.evictions + other.evictions,
            inserts: self.inserts + other.inserts,
            merges: self.merges + other.merges,
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = ProfileStoreStats::default();
        assert_eq!(s.total_events(), 0);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn totals_exclude_the_bytes_gauge() {
        let s = ProfileStoreStats {
            hits: 1,
            misses: 2,
            invalidations: 3,
            evictions: 4,
            inserts: 5,
            merges: 6,
            bytes: 1000,
        };
        assert_eq!(s.total_events(), 21, "bytes are a gauge");
    }

    #[test]
    fn merged_sums_component_wise() {
        let a = ProfileStoreStats {
            hits: 1,
            misses: 2,
            invalidations: 0,
            evictions: 1,
            inserts: 3,
            merges: 4,
            bytes: 100,
        };
        let b = ProfileStoreStats {
            hits: 10,
            misses: 20,
            invalidations: 1,
            evictions: 0,
            inserts: 30,
            merges: 40,
            bytes: 900,
        };
        let m = a.merged(&b);
        assert_eq!(m.hits, 11);
        assert_eq!(m.misses, 22);
        assert_eq!(m.invalidations, 1);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.inserts, 33);
        assert_eq!(m.merges, 44);
        assert_eq!(m.bytes, 1000);
    }
}
