//! The Application Heartbeats interface (Hoffmann et al. [41]).
//!
//! Applications emit a heartbeat per completed unit of work; the runtime
//! derives a windowed heartbeat *rate* as its performance signal. The
//! paper samples this under different knob settings to populate the
//! performance half of the utility matrix.

use std::collections::VecDeque;

use powermed_units::Seconds;
use serde::{Deserialize, Serialize};

/// One heartbeat: a timestamp and the amount of work it certifies.
///
/// Real heartbeats are unit events; the simulation batches them (`ops`
/// completed during a step) to stay step-rate independent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Simulation time of the beat.
    pub at: Seconds,
    /// Work units this beat certifies.
    pub ops: f64,
}

/// Sliding-window heartbeat aggregator for one application.
///
/// Keeps beats within `window` of the newest and reports their rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    window: Seconds,
    beats: VecDeque<Heartbeat>,
    total_ops: f64,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: Seconds) -> Self {
        assert!(window.value() > 0.0, "window must be positive");
        Self {
            window,
            beats: VecDeque::new(),
            total_ops: 0.0,
        }
    }

    /// Records `ops` completed at time `at`.
    ///
    /// Times must be non-decreasing; out-of-order beats are clamped to
    /// the newest seen time (the Accountant polls monotonically).
    pub fn record(&mut self, at: Seconds, ops: f64) {
        let at = match self.beats.back() {
            Some(last) if at < last.at => last.at,
            _ => at,
        };
        self.total_ops += ops;
        self.beats.push_back(Heartbeat { at, ops });
        self.evict(at);
    }

    /// Total work units ever recorded.
    pub fn total_ops(&self) -> f64 {
        self.total_ops
    }

    /// The heartbeat rate (ops/second) over the window ending at `now`,
    /// or `None` if no beats fall inside the window.
    pub fn rate(&mut self, now: Seconds) -> Option<f64> {
        self.evict(now);
        if self.beats.is_empty() {
            return None;
        }
        let ops: f64 = self.beats.iter().map(|b| b.ops).sum();
        Some(ops / self.window.value())
    }

    /// Number of beats currently inside the window.
    pub fn len(&self) -> usize {
        self.beats.len()
    }

    /// Whether no beats are inside the window.
    pub fn is_empty(&self) -> bool {
        self.beats.is_empty()
    }

    fn evict(&mut self, now: Seconds) {
        let cutoff = now - self.window;
        while let Some(front) = self.beats.front() {
            if front.at <= cutoff {
                self.beats.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_window() {
        let mut hb = HeartbeatMonitor::new(Seconds::new(2.0));
        hb.record(Seconds::new(0.5), 10.0);
        hb.record(Seconds::new(1.0), 10.0);
        hb.record(Seconds::new(1.5), 10.0);
        assert_eq!(hb.rate(Seconds::new(2.0)), Some(15.0));
    }

    #[test]
    fn old_beats_evicted() {
        let mut hb = HeartbeatMonitor::new(Seconds::new(1.0));
        hb.record(Seconds::new(0.0), 100.0);
        hb.record(Seconds::new(5.0), 10.0);
        // Only the t=5 beat remains in the [4, 5] window.
        assert_eq!(hb.rate(Seconds::new(5.0)), Some(10.0));
        assert_eq!(hb.len(), 1);
    }

    #[test]
    fn empty_window_reports_none() {
        let mut hb = HeartbeatMonitor::new(Seconds::new(1.0));
        assert_eq!(hb.rate(Seconds::new(10.0)), None);
        hb.record(Seconds::new(0.0), 5.0);
        assert_eq!(hb.rate(Seconds::new(100.0)), None, "beat aged out");
        assert!(hb.is_empty());
    }

    #[test]
    fn total_ops_survives_eviction() {
        let mut hb = HeartbeatMonitor::new(Seconds::new(0.5));
        hb.record(Seconds::new(0.0), 7.0);
        hb.record(Seconds::new(10.0), 3.0);
        let _ = hb.rate(Seconds::new(10.0));
        assert_eq!(hb.total_ops(), 10.0);
    }

    #[test]
    fn out_of_order_beats_clamped() {
        let mut hb = HeartbeatMonitor::new(Seconds::new(5.0));
        hb.record(Seconds::new(2.0), 1.0);
        hb.record(Seconds::new(1.0), 1.0); // clamped to t=2
        assert_eq!(hb.rate(Seconds::new(2.0)), Some(2.0 / 5.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = HeartbeatMonitor::new(Seconds::ZERO);
    }
}
