//! Metrics registry: counters, gauges and log-bucketed histograms.
//!
//! The flight-recorder journal (see [`crate::journal`]) answers *what
//! happened*; this module answers *how often* and *how large*. A
//! [`MetricsRegistry`] holds three families of instruments keyed by
//! name — monotone counters, last-value gauges and [`Histogram`]s with
//! log-spaced buckets (cap-violation magnitude, actuation retry
//! latency, heartbeat jitter, wall-clock self-profiling spans) — and
//! renders them in two expositions: Prometheus text format for humans
//! and scrapers, and a JSON object that the experiment harness merges
//! into `BENCH_harness.json`.
//!
//! Names may carry Prometheus-style labels rendered inline by
//! [`prom_label`] (e.g. `events_total{kind="safe_mode"}`); the
//! exposition code splits the label block back off when grouping
//! `# TYPE` lines. The build is offline (no serialization crate), so
//! the JSON round-trip is hand-rolled: [`MetricsRegistry::to_json`]
//! emits a stable document and [`MetricsRegistry::from_json`] parses it
//! back with a private minimal JSON reader.

use std::collections::BTreeMap;

/// A histogram with precomputed, strictly increasing bucket boundaries.
///
/// Bucket `0` is the underflow bucket (`v < boundaries[0]`), bucket `i`
/// for `1 <= i < boundaries.len()` holds `boundaries[i-1] <= v <
/// boundaries[i]`, and the last bucket is the overflow
/// (`v >= boundaries.last()`). Every finite sample therefore lands in
/// exactly one bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    boundaries: Vec<f64>,
    buckets: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Builds a histogram whose `count` boundaries start at `lo` and
    /// grow geometrically by `growth` (`lo`, `lo*growth`,
    /// `lo*growth^2`, …). Boundaries are produced by iterated
    /// multiplication, not logarithms, so they are exact and the layout
    /// is bit-reproducible.
    ///
    /// # Panics
    ///
    /// When `lo <= 0`, `growth <= 1` or `count == 0` — a log-spaced
    /// layout needs a positive start and strictly increasing edges.
    pub fn log_bucketed(lo: f64, growth: f64, count: usize) -> Self {
        assert!(lo > 0.0, "log buckets need a positive start");
        assert!(growth > 1.0, "log buckets need growth > 1");
        assert!(count > 0, "a histogram needs at least one boundary");
        let mut boundaries = Vec::with_capacity(count);
        let mut edge = lo;
        for _ in 0..count {
            boundaries.push(edge);
            edge *= growth;
        }
        Self {
            buckets: vec![0; boundaries.len() + 1],
            boundaries,
            sum: 0.0,
            count: 0,
        }
    }

    /// The registry-wide default layout: 48 doubling buckets from
    /// `1e-6`, covering microseconds-to-days of latency and
    /// milliwatts-to-megawatts of violation magnitude in one shape.
    pub fn default_layout() -> Self {
        Self::log_bucketed(1e-6, 2.0, 48)
    }

    /// Index of the single bucket `v` falls into (see the type docs for
    /// the boundary convention).
    pub fn bucket_for(&self, v: f64) -> usize {
        self.boundaries.partition_point(|&b| b <= v)
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bucket_for(v);
        self.buckets[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// The strictly increasing bucket boundaries.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Per-bucket sample counts (`boundaries().len() + 1` entries:
    /// underflow, the inner buckets, overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded samples, or `None` before the first one.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Rebuilds a histogram from its serialized parts, validating the
    /// shape invariants (`buckets.len() == boundaries.len() + 1`,
    /// strictly increasing boundaries, bucket totals matching `count`).
    fn from_parts(boundaries: Vec<f64>, buckets: Vec<u64>, sum: f64, count: u64) -> Option<Self> {
        if buckets.len() != boundaries.len() + 1 || boundaries.is_empty() {
            return None;
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        if buckets.iter().sum::<u64>() != count {
            return None;
        }
        Some(Self {
            boundaries,
            buckets,
            sum,
            count,
        })
    }
}

/// Counters, gauges and histograms keyed by (optionally labeled) name.
///
/// All maps are `BTreeMap`s so both expositions are deterministically
/// ordered — the Prometheus golden test and the smoke-digest CI check
/// rely on that.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter `name` by one, creating it at zero first.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Increments the counter `name` by `by`, creating it at zero first.
    /// Allocates the key only on first touch, keeping repeated
    /// increments allocation-free on the emission hot path.
    pub fn inc_by(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current value of the counter `name` (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `v` (last write wins). Allocates the key
    /// only on first touch.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into the histogram `name`, creating it with the
    /// [`Histogram::default_layout`] on first use.
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default_layout();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Registers (or replaces) the histogram `name` with a custom
    /// layout; later [`Self::observe`] calls reuse it.
    pub fn register_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_string(), histogram);
    }

    /// The histogram `name`, if any sample (or layout) was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates the counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates the gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates the histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when no instrument has ever been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value, histogram samples accumulate bucket-wise when the layouts
    /// match (mismatched layouts take `other`'s histogram whole).
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.boundaries == h.boundaries => {
                    for (b, add) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += add;
                    }
                    mine.sum += h.sum;
                    mine.count += h.count;
                }
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// one `# TYPE` line per metric family (the name before any label
    /// block), then one sample line per instrument, everything in
    /// lexicographic name order. Histograms render cumulative
    /// `_bucket{le="…"}` lines plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, value) in &self.counters {
            let (family, labels) = split_labels(key);
            let family = sanitize_name(family);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = family.clone();
            }
            out.push_str(&format!("{family}{labels} {value}\n"));
        }
        last_family.clear();
        for (key, value) in &self.gauges {
            let (family, labels) = split_labels(key);
            let family = sanitize_name(family);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} gauge\n"));
                last_family = family.clone();
            }
            out.push_str(&format!("{family}{labels} {value}\n"));
        }
        last_family.clear();
        for (key, hist) in &self.histograms {
            let (family, labels) = split_labels(key);
            let family = sanitize_name(family);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family.clone();
            }
            let inner = labels
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or("");
            let mut cumulative = 0u64;
            for (edge, bucket) in hist.boundaries.iter().zip(&hist.buckets) {
                cumulative += bucket;
                out.push_str(&format!(
                    "{family}_bucket{} {cumulative}\n",
                    bucket_labels(inner, &format!("{edge}"))
                ));
            }
            out.push_str(&format!(
                "{family}_bucket{} {}\n",
                bucket_labels(inner, "+Inf"),
                hist.count
            ));
            out.push_str(&format!("{family}_sum{labels} {}\n", hist.sum));
            out.push_str(&format!("{family}_count{labels} {}\n", hist.count));
        }
        out
    }

    /// Renders the registry as a JSON object with `counters`, `gauges`
    /// and `histograms` sections, stable in name order. The output is
    /// shaped for direct use as a `BENCH_harness.json` section value.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n    \"counters\": {");
        push_json_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n    \"gauges\": {");
        push_json_map(&mut out, self.gauges.iter().map(|(k, v)| (k, json_num(*v))));
        out.push_str("},\n    \"histograms\": {");
        push_json_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let bounds: Vec<String> = h.boundaries.iter().map(|b| json_num(*b)).collect();
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                let body = format!(
                    "{{\"boundaries\": [{}], \"buckets\": [{}], \"sum\": {}, \"count\": {}}}",
                    bounds.join(", "),
                    buckets.join(", "),
                    json_num(h.sum),
                    h.count
                );
                (k, body)
            }),
        );
        out.push_str("}\n  }");
        out
    }

    /// Parses a document produced by [`Self::to_json`] back into a
    /// registry. Returns `None` on any structural mismatch — this is a
    /// round-trip reader for our own exposition, not a general JSON
    /// metrics importer.
    pub fn from_json(text: &str) -> Option<Self> {
        let top = mini_json::parse(text)?;
        let top = top.as_object()?;
        let mut registry = Self::new();
        for (key, value) in field(top, "counters")?.as_object()? {
            registry.counters.insert(key.clone(), value.as_u64()?);
        }
        for (key, value) in field(top, "gauges")?.as_object()? {
            registry.gauges.insert(key.clone(), value.as_f64()?);
        }
        for (key, value) in field(top, "histograms")?.as_object()? {
            let h = value.as_object()?;
            let boundaries = field(h, "boundaries")?
                .as_array()?
                .iter()
                .map(mini_json::Value::as_f64)
                .collect::<Option<Vec<f64>>>()?;
            let buckets = field(h, "buckets")?
                .as_array()?
                .iter()
                .map(mini_json::Value::as_u64)
                .collect::<Option<Vec<u64>>>()?;
            let sum = field(h, "sum")?.as_f64()?;
            let count = field(h, "count")?.as_u64()?;
            registry.histograms.insert(
                key.clone(),
                Histogram::from_parts(boundaries, buckets, sum, count)?,
            );
        }
        Some(registry)
    }
}

/// Formats `name{k="v",…}` with Prometheus label-value escaping
/// (backslash, double quote and newline are escaped). With no labels
/// the bare name is returned.
pub fn prom_label(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits `name{labels}` into `(name, "{labels}")`; the label part is
/// empty when the key carries none.
fn split_labels(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(idx) => (&key[..idx], &key[idx..]),
        None => (key, ""),
    }
}

/// Maps a metric family name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`); anything else becomes `_`.
fn sanitize_name(family: &str) -> String {
    family
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Joins existing label content with the `le` bucket label.
fn bucket_labels(inner: &str, le: &str) -> String {
    if inner.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{inner},le=\"{le}\"}}")
    }
}

/// Renders an f64 as a JSON-compatible number via `Display` (Rust's
/// shortest round-tripping decimal form, never scientific notation).
fn json_num(v: f64) -> String {
    format!("{v}")
}

/// Appends `"key": value` pairs (values are raw JSON text) to `out`.
fn push_json_map<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (key, value) in pairs {
        if first {
            out.push('\n');
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&format!("      \"{}\": {value}", json_escape(key)));
    }
    if !first {
        out.push_str("\n    ");
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Looks up `name` in a parsed JSON object.
fn field<'a>(obj: &'a [(String, mini_json::Value)], name: &str) -> Option<&'a mini_json::Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// A minimal recursive-descent JSON reader, private to this module.
///
/// The telemetry crate sits below `powermed-profiles` in the dependency
/// graph, so it cannot reuse that crate's parser; this one supports
/// exactly what [`MetricsRegistry::to_json`] emits (objects, arrays,
/// strings with escapes, and numbers kept as raw text so integer
/// counters survive the trip unrounded).
mod mini_json {
    /// A parsed JSON value; numbers keep their raw text.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, as the raw source text.
        Num(String),
        /// A string, unescaped.
        Str(String),
        /// An array of values.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object fields, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The number as an unsigned integer, if it parses as one.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        /// The number as a float, if it parses as one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }
    }

    /// Parses `text` as a single JSON value with no trailing content.
    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        pub fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, b: u8) -> Option<()> {
            (self.peek() == Some(b)).then(|| self.pos += 1)
        }

        fn literal(&mut self, word: &str) -> Option<()> {
            let end = self.pos + word.len();
            if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
                self.pos = end;
                Some(())
            } else {
                None
            }
        }

        pub fn value(&mut self) -> Option<Value> {
            self.skip_ws();
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => self.string().map(Value::Str),
                b't' => self.literal("true").map(|()| Value::Bool(true)),
                b'f' => self.literal("false").map(|()| Value::Bool(false)),
                b'n' => self.literal("null").map(|()| Value::Null),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Option<Value> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.eat(b'}').is_some() {
                return Some(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                if self.eat(b',').is_some() {
                    continue;
                }
                self.eat(b'}')?;
                return Some(Value::Obj(fields));
            }
        }

        fn array(&mut self) -> Option<Value> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.eat(b']').is_some() {
                return Some(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                if self.eat(b',').is_some() {
                    continue;
                }
                self.eat(b']')?;
                return Some(Value::Arr(items));
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek()? {
                    b'"' => {
                        self.pos += 1;
                        return Some(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        match self.peek()? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                                out.push(char::from_u32(code)?);
                                self.pos += 4;
                            }
                            _ => return None,
                        }
                        self.pos += 1;
                    }
                    _ => {
                        // Consume one whole UTF-8 scalar from the source.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                        let ch = rest.chars().next()?;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Option<Value> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            if self.pos == start {
                return None;
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
            raw.parse::<f64>().ok()?;
            Some(Value::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_basic() {
        let mut m = MetricsRegistry::new();
        m.inc("polls_total");
        m.inc_by("polls_total", 2);
        m.set_gauge("cap_w", 80.0);
        m.set_gauge("cap_w", 75.0);
        assert_eq!(m.counter("polls_total"), 3);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("cap_w"), Some(75.0));
    }

    #[test]
    fn histogram_buckets_partition_the_line() {
        let h = Histogram::log_bucketed(1.0, 2.0, 4); // edges 1,2,4,8
        assert_eq!(h.bucket_for(0.5), 0, "underflow");
        assert_eq!(h.bucket_for(1.0), 1, "left edge is inclusive above");
        assert_eq!(h.bucket_for(1.9), 1);
        assert_eq!(h.bucket_for(2.0), 2);
        assert_eq!(h.bucket_for(7.9), 3);
        assert_eq!(h.bucket_for(8.0), 4, "overflow");
        assert_eq!(h.buckets().len(), h.boundaries().len() + 1);
    }

    #[test]
    fn histogram_observe_accumulates() {
        let mut h = Histogram::log_bucketed(1.0, 2.0, 3);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.6).abs() < 1e-9);
        assert_eq!(h.buckets(), &[1, 2, 1, 1]);
        assert!((h.mean().unwrap() - 21.32).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_histogram_buckets() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        a.observe("h", 1.5);
        let mut b = MetricsRegistry::new();
        b.inc_by("x", 4);
        b.observe("h", 2.5);
        b.set_gauge("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn prometheus_golden() {
        let mut m = MetricsRegistry::new();
        m.inc_by("events_total{kind=\"arrival\"}", 2);
        m.inc_by("events_total{kind=\"poll\"}", 7);
        m.inc("retries_total");
        m.set_gauge("cap_w", 80.0);
        m.register_histogram("lat_seconds", Histogram::log_bucketed(0.001, 10.0, 3));
        m.observe("lat_seconds", 0.0005);
        m.observe("lat_seconds", 0.02);
        let got = m.to_prometheus();
        let want = "\
# TYPE events_total counter
events_total{kind=\"arrival\"} 2
events_total{kind=\"poll\"} 7
# TYPE retries_total counter
retries_total 1
# TYPE cap_w gauge
cap_w 80
# TYPE lat_seconds histogram
lat_seconds_bucket{le=\"0.001\"} 1
lat_seconds_bucket{le=\"0.01\"} 1
lat_seconds_bucket{le=\"0.1\"} 2
lat_seconds_bucket{le=\"+Inf\"} 2
lat_seconds_sum 0.0205
lat_seconds_count 2
";
        assert_eq!(got, want);
    }

    #[test]
    fn prometheus_escapes_label_values_and_sanitizes_names() {
        let name = prom_label("odd.family", &[("what", "a\"b\\c\nd")]);
        let mut m = MetricsRegistry::new();
        m.inc(&name);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE odd_family counter"), "{text}");
        assert!(
            text.contains("odd_family{what=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn labeled_histograms_merge_le_into_the_label_block() {
        let mut m = MetricsRegistry::new();
        m.register_histogram(
            &prom_label("span_seconds", &[("name", "plan")]),
            Histogram::log_bucketed(0.001, 10.0, 2),
        );
        m.observe(&prom_label("span_seconds", &[("name", "plan")]), 0.005);
        let text = m.to_prometheus();
        assert!(
            text.contains("span_seconds_bucket{name=\"plan\",le=\"0.01\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("span_seconds_sum{name=\"plan\"} 0.005"),
            "{text}"
        );
    }

    #[test]
    fn json_round_trips() {
        let mut m = MetricsRegistry::new();
        m.inc_by("events_total{kind=\"safe_mode\"}", 3);
        m.inc("knob_writes_total");
        m.set_gauge("journal_len", 128.0);
        m.set_gauge("frac", 0.123456789);
        m.observe("cap_violation_w", 12.5);
        m.observe("cap_violation_w", 0.25);
        m.observe("heartbeat_jitter_hz", 3.0);
        let text = m.to_json();
        let back = MetricsRegistry::from_json(&text).expect("own output parses");
        assert_eq!(back, m);
        assert_eq!(back.to_json(), text, "exposition is a fixed point");
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(MetricsRegistry::from_json("not json").is_none());
        assert!(
            MetricsRegistry::from_json("{}").is_none(),
            "sections required"
        );
        assert!(MetricsRegistry::from_json(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": {\"boundaries\": [2.0, 1.0], \"buckets\": [0, 0, 0], \"sum\": 0, \"count\": 0}}}"
        )
        .is_none(), "non-monotone boundaries rejected");
    }

    proptest::proptest! {
        /// Log-bucketed boundaries are strictly increasing for any
        /// legal layout.
        #[test]
        fn prop_boundaries_are_monotone(
            lo in 1e-9f64..1e3,
            growth in 1.01f64..16.0,
            count in 1usize..64,
        ) {
            let h = Histogram::log_bucketed(lo, growth, count);
            let b = h.boundaries();
            proptest::prop_assert_eq!(b.len(), count);
            for w in b.windows(2) {
                proptest::prop_assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
            }
        }

        /// Every finite sample lands in exactly one bucket: `bucket_for`
        /// agrees with a brute-force scan of the interval convention,
        /// and observing increments exactly that bucket.
        #[test]
        fn prop_every_sample_lands_in_exactly_one_bucket(
            lo in 1e-6f64..10.0,
            growth in 1.1f64..8.0,
            count in 1usize..32,
            sample in -1e9f64..1e9,
        ) {
            let mut h = Histogram::log_bucketed(lo, growth, count);
            let idx = h.bucket_for(sample);
            let b = h.boundaries().to_vec();
            let matches: Vec<usize> = (0..=b.len())
                .filter(|&i| {
                    let above_left = i == 0 || sample >= b[i - 1];
                    let below_right = i == b.len() || sample < b[i];
                    above_left && below_right
                })
                .collect();
            proptest::prop_assert_eq!(&matches, &vec![idx]);
            h.observe(sample);
            let mut want = vec![0u64; b.len() + 1];
            want[idx] = 1;
            proptest::prop_assert_eq!(h.buckets(), want.as_slice());
            proptest::prop_assert_eq!(h.count(), 1);
        }
    }

    #[test]
    fn empty_registry_round_trips() {
        let m = MetricsRegistry::new();
        let back = MetricsRegistry::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(back.is_empty());
        assert_eq!(m.to_prometheus(), "");
    }
}
