//! Telemetry for `powermed`: application heartbeats, power metering and
//! time-series recording.
//!
//! The paper's runtime observes applications through two channels
//! (Sec. III-A): the **Application Heartbeats** interface for performance
//! and the **RAPL energy counters** for power. The Accountant polls both
//! "in the order of microseconds" to detect drift (event E4) and
//! departures (E3). This crate provides those observation channels for
//! the simulated platform, plus a general time-series recorder that the
//! figure-regeneration harness uses to dump every plotted signal.
//!
//! # Example
//!
//! ```
//! use powermed_telemetry::heartbeat::HeartbeatMonitor;
//! use powermed_units::Seconds;
//!
//! let mut hb = HeartbeatMonitor::new(Seconds::new(1.0));
//! hb.record(Seconds::new(0.1), 100.0);
//! hb.record(Seconds::new(0.6), 100.0);
//! let rate = hb.rate(Seconds::new(1.0)).unwrap();
//! assert!((rate - 200.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod heartbeat;
pub mod journal;
pub mod meter;
pub mod metrics;
pub mod recorder;
pub mod store;

pub use faults::{EstimationStats, FaultStats, HardeningStats};
pub use heartbeat::{Heartbeat, HeartbeatMonitor};
pub use journal::{
    EventJournal, EventRecord, FleetKey, FleetRecord, FleetTimeline, JournalDigest,
    KnobWriteVerdict, Obs, ObsConfig, ObsEvent, SafeModeTransition, MANAGER_SERVER_ID,
};
pub use meter::{CapCompliance, PowerMeter};
pub use metrics::{prom_label, Histogram, MetricsRegistry};
pub use recorder::{SharedRecorder, TraceRecorder};
pub use store::ProfileStoreStats;
