//! Named time-series recording for figure regeneration.
//!
//! Every signal the paper plots — per-app power allocations over time
//! (Fig. 11), cluster caps (Fig. 12a), battery state (Fig. 5) — is dumped
//! through a [`TraceRecorder`] so the bench harness can print or export
//! the exact series.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use powermed_units::Seconds;
use serde::{Deserialize, Serialize};

/// A set of named `(time, value)` series.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceRecorder {
    series: BTreeMap<String, Vec<(Seconds, f64)>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point to `series` (created on first use).
    pub fn push(&mut self, series: &str, at: Seconds, value: f64) {
        // Look up by &str first: the entry API would allocate a String
        // key on every call, and pushes to existing series dominate.
        if let Some(points) = self.series.get_mut(series) {
            points.push((at, value));
        } else {
            self.series.insert(series.to_string(), vec![(at, value)]);
        }
    }

    /// Like [`Self::push`], but takes ownership of an already-built key
    /// so the first insert reuses it instead of re-allocating, and the
    /// double lookup (`get_mut` then `insert`) collapses into one entry
    /// walk. Use this on paths that `format!` their series names.
    pub fn push_owned(&mut self, series: String, at: Seconds, value: f64) {
        self.series.entry(series).or_default().push((at, value));
    }

    /// The names of all recorded series, in name order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The points of `series`, or `None` if it was never written.
    pub fn series(&self, name: &str) -> Option<&[(Seconds, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// The last value of `series`, if any.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series.get(name)?.last().map(|(_, v)| *v)
    }

    /// Arithmetic mean of `series` values, if any.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series.get(name)?;
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|(_, v)| v).sum::<f64>() / s.len() as f64)
    }

    /// Maximum of `series` values, if any.
    pub fn max(&self, name: &str) -> Option<f64> {
        let s = self.series.get(name)?;
        s.iter().map(|(_, v)| *v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Time-weighted mean of `series` (trapezoidal between samples), or
    /// the plain mean when fewer than two points exist.
    pub fn time_weighted_mean(&self, name: &str) -> Option<f64> {
        let s = self.series.get(name)?;
        if s.len() < 2 {
            return self.mean(name);
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in s.windows(2) {
            let dt = (w[1].0 - w[0].0).value();
            if dt <= 0.0 {
                continue;
            }
            area += 0.5 * (w[0].1 + w[1].1) * dt;
            span += dt;
        }
        if span <= 0.0 {
            self.mean(name)
        } else {
            Some(area / span)
        }
    }

    /// Renders every series as CSV: `series,time_s,value` rows with a
    /// header, in series-name then insertion order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time_s,value\n");
        for (name, points) in &self.series {
            for (t, v) in points {
                out.push_str(&format!("{name},{},{v}\n", t.value()));
            }
        }
        out
    }

    /// Merges another recorder's series into this one (points appended).
    pub fn merge(&mut self, other: &TraceRecorder) {
        for (name, points) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend(points.iter().copied());
        }
    }
}

/// A clonable, thread-safe handle to a [`TraceRecorder`], for sim
/// callbacks that outlive a single `&mut` borrow.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder(Arc<Mutex<TraceRecorder>>);

impl SharedRecorder {
    /// Creates a handle to a fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point (see [`TraceRecorder::push`]).
    pub fn push(&self, series: &str, at: Seconds, value: f64) {
        self.0.lock().push(series, at, value);
    }

    /// Runs `f` with shared access to the recorder.
    pub fn with<R>(&self, f: impl FnOnce(&TraceRecorder) -> R) -> R {
        f(&self.0.lock())
    }

    /// Takes a snapshot of the current contents.
    pub fn snapshot(&self) -> TraceRecorder {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut r = TraceRecorder::new();
        r.push("power", Seconds::new(0.0), 90.0);
        r.push("power", Seconds::new(1.0), 110.0);
        r.push("soc", Seconds::new(0.0), 0.5);
        assert_eq!(r.series_names(), vec!["power", "soc"]);
        assert_eq!(r.series("power").unwrap().len(), 2);
        assert_eq!(r.last("power"), Some(110.0));
        assert_eq!(r.mean("power"), Some(100.0));
        assert_eq!(r.max("power"), Some(110.0));
        assert_eq!(r.series("nope"), None);
        assert_eq!(r.mean("nope"), None);
    }

    #[test]
    fn push_owned_matches_push_behavior() {
        let mut borrowed = TraceRecorder::new();
        let mut owned = TraceRecorder::new();
        for (name, t, v) in [
            ("app_power_w.stream", 0.0, 30.0),
            ("app_power_w.kmeans", 0.0, 40.0),
            ("app_power_w.stream", 1.0, 35.0),
        ] {
            borrowed.push(name, Seconds::new(t), v);
            owned.push_owned(name.to_string(), Seconds::new(t), v);
        }
        assert_eq!(borrowed, owned, "both insert paths build the same series");
        assert_eq!(owned.series("app_power_w.stream").unwrap().len(), 2);
        assert_eq!(owned.series("app_power_w.kmeans").unwrap().len(), 1);
    }

    #[test]
    fn time_weighted_mean_trapezoidal() {
        let mut r = TraceRecorder::new();
        // 0 W for 1 s ramping to 10 W: trapezoid mean = 5.
        r.push("p", Seconds::new(0.0), 0.0);
        r.push("p", Seconds::new(1.0), 10.0);
        assert_eq!(r.time_weighted_mean("p"), Some(5.0));
        // Single point falls back to plain mean.
        let mut r2 = TraceRecorder::new();
        r2.push("p", Seconds::new(0.0), 7.0);
        assert_eq!(r2.time_weighted_mean("p"), Some(7.0));
    }

    #[test]
    fn csv_export() {
        let mut r = TraceRecorder::new();
        r.push("a", Seconds::new(0.5), 1.0);
        let csv = r.to_csv();
        assert!(csv.starts_with("series,time_s,value\n"));
        assert!(csv.contains("a,0.5,1\n"));
    }

    #[test]
    fn merge_appends() {
        let mut a = TraceRecorder::new();
        a.push("x", Seconds::new(0.0), 1.0);
        let mut b = TraceRecorder::new();
        b.push("x", Seconds::new(1.0), 2.0);
        b.push("y", Seconds::new(0.0), 3.0);
        a.merge(&b);
        assert_eq!(a.series("x").unwrap().len(), 2);
        assert_eq!(a.last("y"), Some(3.0));
    }

    #[test]
    fn shared_recorder_roundtrip() {
        let shared = SharedRecorder::new();
        let clone = shared.clone();
        clone.push("p", Seconds::new(0.0), 42.0);
        assert_eq!(shared.with(|r| r.last("p")), Some(42.0));
        let snap = shared.snapshot();
        assert_eq!(snap.last("p"), Some(42.0));
    }
}
