//! Flight-recorder event journal with causal ids.
//!
//! The figure-oriented [`crate::recorder::TraceRecorder`] stores
//! *signals*; this module stores *decisions*. Every consequential step
//! the mediator, simulator or cluster control plane takes — an
//! allocation installed, an E1–E6 event handled, a safe-mode
//! escalation, a probe skipped, a knob write retried, an uplink
//! dropped — is appended to a bounded ring buffer as a structured
//! [`ObsEvent`] stamped with simulation time and three causal ids:
//! the poll sequence number, the app name (when one is involved) and
//! the control-plane epoch. A post-mortem tool (`doctor`) can then walk
//! the journal backward from an effect (a force-throttle) to its causes
//! (the over-cap polls and sensor verdicts that armed the watchdog).
//!
//! The whole plane hangs off an `Option<`[`Obs`]`>` in each producer:
//! when the option is `None` (the default everywhere) no journal, no
//! registry and no lock exist and every emission site is a skipped
//! `if let` — the zero-cost-off property the bit-identical figure
//! checks in CI enforce.

use crate::metrics::{prom_label, Histogram, MetricsRegistry};
use powermed_units::Seconds;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a knob write attempt came to, as seen by the hardened mediator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobWriteVerdict {
    /// The write landed and read-back verified it on the first try.
    Landed,
    /// The write did not verify; a retry was scheduled.
    Deferred,
    /// A scheduled retry landed and verified.
    RetryLanded,
    /// The retry budget ran out; the fault was escalated as E5.
    RetryExhausted,
}

/// A safe-mode state change in the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeModeTransition {
    /// The watchdog engaged: all apps forced to their floor knobs.
    Engaged,
    /// Observed power stayed under the cap long enough to release.
    Released,
    /// Still over cap after the patience budget: apps suspended.
    Escalated,
}

/// One structured decision record.
///
/// Variants mirror the runtime's decision points one-to-one; the
/// [`ObsEvent::kind`] string doubles as the per-kind counter label in
/// the metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// One accounting poll: allocation out, net power in, the observed
    /// channel's reading, the active cap, and whether the observed
    /// reading violated the cap (the signal the watchdog feeds on).
    Poll {
        /// Total power currently allocated to apps, in watts.
        alloc_w: f64,
        /// True net draw this poll, in watts.
        net_w: f64,
        /// What the (possibly faulty) sensor channel reported.
        observed_w: Option<f64>,
        /// The active power cap, in watts.
        cap_w: f64,
        /// Whether the *observed* reading exceeded the cap.
        over_cap: bool,
    },
    /// A plan was computed and a schedule installed.
    Planned {
        /// Number of apps covered by the new schedule.
        apps: usize,
        /// Schedule shape (`"space"`, `"alternate"`, `"hybrid"`, …).
        mode: &'static str,
    },
    /// One app's power share under the freshly installed schedule.
    Allocation {
        /// The app receiving the share.
        app: String,
        /// Allocated watts.
        watts: f64,
    },
    /// E1: the cap changed.
    CapChanged {
        /// The new cap, in watts.
        cap_w: f64,
    },
    /// E2: an app arrived.
    Arrival {
        /// The arriving app.
        app: String,
    },
    /// E3: an app departed.
    Departure {
        /// The departing app.
        app: String,
    },
    /// E4: an app's performance drifted off its profile.
    Drift {
        /// The drifting app.
        app: String,
    },
    /// E5: a knob write was lost (actuation fault).
    ActuationFault {
        /// The app whose knob write failed.
        app: String,
    },
    /// E6: the power sensor was declared untrustworthy.
    SensorFault {
        /// The latched diagnosis (e.g. `"3 consecutive dropouts"`).
        what: String,
    },
    /// Sensor health counters crossed zero but have not latched yet.
    SensorSuspect {
        /// Consecutive dropout count so far.
        dropouts: u32,
        /// Consecutive stuck-reading count so far.
        stuck: u32,
    },
    /// The estimated-power residual (meter vs model prediction) spiked
    /// past the confidence band — one poll of evidence toward the
    /// estimation degradation ladder.
    ResidualSpike {
        /// Meter minus model-predicted net, in watts.
        residual_w: f64,
        /// One-sigma confidence band on the total at that poll.
        band_w: f64,
        /// Consecutive spike polls so far (including this one).
        streak: u32,
    },
    /// The estimation layer's conservative fallback cap changed state:
    /// engaged (planning cap shaved by the confidence band) or
    /// released (residual stayed clean long enough).
    FallbackCap {
        /// Watts shaved off the planning cap (0 on release).
        shave_w: f64,
        /// `true` on engage, `false` on release.
        engaged: bool,
    },
    /// A calibration decision for one admission.
    Probe {
        /// The app being calibrated.
        app: String,
        /// Grid points probed cold (measured on the platform).
        cold: usize,
        /// Grid points warm-started from a stored profile.
        warm: usize,
        /// Grid points skipped entirely thanks to prior knowledge.
        skipped: usize,
    },
    /// A verified knob write (or its failure).
    KnobWrite {
        /// The app whose knob was written.
        app: String,
        /// How the write fared.
        verdict: KnobWriteVerdict,
        /// Attempts consumed so far, including the original write.
        attempts: u32,
    },
    /// The safe-mode watchdog changed state.
    SafeMode {
        /// The transition taken.
        transition: SafeModeTransition,
    },
    /// Safe mode forced one app to its floor setting.
    ForceThrottle {
        /// The throttled app.
        app: String,
    },
    /// A profile version was published to the knowledge plane.
    StorePublish {
        /// The profiled app.
        app: String,
        /// Version number published.
        version: u64,
    },
    /// A profile was invalidated (tombstoned) fleet-wide.
    StoreTombstone {
        /// The invalidated app.
        app: String,
        /// Version number of the tombstone.
        version: u64,
    },
    /// The manager broadcast a downlink to one server.
    DownlinkSent {
        /// Destination server index.
        server: usize,
        /// Control-plane epoch carried by the frame.
        epoch: u64,
        /// Cap assignment carried by the frame, in watts.
        cap_w: f64,
        /// Whether this was a repair (re-send after suspected loss).
        repair: bool,
    },
    /// A server sent its periodic uplink report.
    UplinkSent {
        /// Source server index.
        server: usize,
        /// Control-plane step the report was sent at.
        step: u64,
    },
    /// A control-plane frame was dropped by the lossy network.
    LinkDropped {
        /// The server whose link dropped the frame.
        server: usize,
        /// `true` for uplink (server→manager), `false` for downlink.
        uplink: bool,
    },
    /// A control-plane frame was delayed in flight.
    LinkDelayed {
        /// The server whose link delayed the frame.
        server: usize,
        /// `true` for uplink (server→manager), `false` for downlink.
        uplink: bool,
        /// Delay, in control-plane steps.
        steps: u64,
    },
    /// A server lost both link directions (endpoint outage).
    EndpointLoss {
        /// The partitioned server.
        server: usize,
    },
    /// A server crashed.
    NodeCrash {
        /// The crashed server.
        server: usize,
    },
    /// A crashed server restarted.
    NodeRestart {
        /// The restarted server.
        server: usize,
    },
    /// The manager crashed.
    ManagerCrash,
    /// A standby manager took over from a checkpoint.
    ManagerTakeover,
    /// An app's claimed heartbeat ratio hit the estimator's clamp
    /// bound — mild evidence its self-reports disagree with physics.
    HeartbeatClampBound {
        /// The app whose claim was clamped.
        app: String,
        /// The raw (pre-clamp) claimed-over-expected heartbeat ratio.
        ratio: f64,
    },
    /// The integrity layer lowered an app's trust score.
    TrustDowngrade {
        /// The downgraded app.
        app: String,
        /// The trust score after the downgrade, in `[0, 1]`.
        score: f64,
    },
    /// E7: an app crossed the quarantine threshold and was clamped to
    /// its fair share with profile-only estimation.
    Quarantine {
        /// The quarantined app.
        app: String,
        /// The dominant evidence stream (e.g. `"implausible heartbeat"`).
        cause: String,
    },
    /// The watt-debt ledger clawed back overdrawn watts from an app's
    /// allocation so honest apps are made whole.
    Clawback {
        /// The app repaying its debt.
        app: String,
        /// Watts withheld from the allocation this plan.
        w: f64,
    },
    /// E7 surfaced through the accountant (one per quarantine episode).
    IntegrityFault {
        /// The offending app.
        app: String,
    },
    /// The traffic source's offered load jumped to a multiple of its
    /// diurnal baseline (a flash crowd; edge-triggered per burst).
    DemandSpike {
        /// The app whose offered load spiked.
        app: String,
        /// Offered-over-baseline rate multiplier at burst onset.
        ratio: f64,
    },
    /// An SLO accounting window closed with this verdict.
    SloWindow {
        /// The app the window scored.
        app: String,
        /// Fraction of the window's completed requests that met the
        /// latency budget.
        attainment: f64,
        /// Whether attainment met the configured target.
        ok: bool,
    },
    /// The bounded journal ring overwrote records that were never
    /// shipped in a digest: the fleet timeline has a hole of `dropped`
    /// events starting at this record's own `seq`. Synthesized at
    /// digest-extraction time (never stored in the ring, which would
    /// recurse at capacity 1) and regenerated identically on every
    /// re-ship, so the idempotent fleet merge dedups it for free.
    DigestGap {
        /// Unshipped records lost to the wraparound.
        dropped: u64,
    },
    /// Manager-side: one control step of aggregate net draw over the
    /// cluster budget while the facility breaker arms.
    FleetOverBudget {
        /// Aggregate net draw that step, in watts.
        net_w: f64,
        /// The cluster budget in force, in watts.
        budget_w: f64,
        /// Consecutive violating steps so far (including this one).
        streak: u64,
    },
    /// Manager-side: during an over-budget step, one server's reported
    /// draw exceeded the share the manager intended for it — the
    /// per-server attribution of a breaker arm (a naive server obeying a
    /// stale cap is over the manager's *intended* share, not its own).
    ServerOverdraw {
        /// The overdrawing server.
        server: usize,
        /// Its reported net draw, in watts.
        net_w: f64,
        /// The share the manager intended for it, in watts.
        share_w: f64,
    },
    /// The facility breaker tripped: every up server is clamped to the
    /// floor for the hold window.
    BreakerTrip {
        /// Steps the emergency clamp stays in force.
        hold_steps: u64,
        /// The clamp floor, in watts.
        floor_w: f64,
    },
    /// The breaker's hold expired and pre-trip caps were restored.
    BreakerRelease,
    /// The fleet clamp landed on one server (breaker floor applied).
    EmergencyClamp {
        /// The clamped server.
        server: usize,
    },
    /// Agent-side: one heartbeat interval elapsed with no downlink.
    HeartbeatMissed {
        /// Consecutive missed intervals so far (including this one).
        misses: u64,
    },
    /// Agent-side: downlink silence engaged the conservative local
    /// fallback cap (see [`crate::journal::ObsEvent::FallbackCap`] for
    /// the unrelated estimation-ladder cap shave).
    FallbackEngage {
        /// The cap the fallback engaged on (the last acked share), in
        /// watts.
        cap_w: f64,
    },
    /// Agent-side: the engaged fallback decayed the local cap one step
    /// toward the idle floor.
    FallbackDecay {
        /// The cap after the decay step, in watts.
        cap_w: f64,
    },
    /// Agent-side: a fresh downlink released the fallback cap (the
    /// partitioned node rejoined).
    FallbackRelease {
        /// The manager's cap that replaced the fallback, in watts.
        cap_w: f64,
    },
}

impl ObsEvent {
    /// Stable snake_case tag for this event, used as the `kind` label
    /// on the per-kind event counter and in `doctor` output.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Poll { .. } => "poll",
            ObsEvent::Planned { .. } => "planned",
            ObsEvent::Allocation { .. } => "allocation",
            ObsEvent::CapChanged { .. } => "cap_changed",
            ObsEvent::Arrival { .. } => "arrival",
            ObsEvent::Departure { .. } => "departure",
            ObsEvent::Drift { .. } => "drift",
            ObsEvent::ActuationFault { .. } => "actuation_fault",
            ObsEvent::SensorFault { .. } => "sensor_fault",
            ObsEvent::SensorSuspect { .. } => "sensor_suspect",
            ObsEvent::ResidualSpike { .. } => "residual_spike",
            ObsEvent::FallbackCap { .. } => "fallback_cap",
            ObsEvent::Probe { .. } => "probe",
            ObsEvent::KnobWrite { .. } => "knob_write",
            ObsEvent::SafeMode { .. } => "safe_mode",
            ObsEvent::ForceThrottle { .. } => "force_throttle",
            ObsEvent::StorePublish { .. } => "store_publish",
            ObsEvent::StoreTombstone { .. } => "store_tombstone",
            ObsEvent::DownlinkSent { .. } => "downlink_sent",
            ObsEvent::UplinkSent { .. } => "uplink_sent",
            ObsEvent::LinkDropped { .. } => "link_dropped",
            ObsEvent::LinkDelayed { .. } => "link_delayed",
            ObsEvent::EndpointLoss { .. } => "endpoint_loss",
            ObsEvent::NodeCrash { .. } => "node_crash",
            ObsEvent::NodeRestart { .. } => "node_restart",
            ObsEvent::ManagerCrash => "manager_crash",
            ObsEvent::ManagerTakeover => "manager_takeover",
            ObsEvent::HeartbeatClampBound { .. } => "heartbeat_clamp_bound",
            ObsEvent::TrustDowngrade { .. } => "trust_downgrade",
            ObsEvent::Quarantine { .. } => "quarantine",
            ObsEvent::Clawback { .. } => "clawback",
            ObsEvent::IntegrityFault { .. } => "integrity_fault",
            ObsEvent::DemandSpike { .. } => "demand_spike",
            ObsEvent::SloWindow { .. } => "slo_window",
            ObsEvent::DigestGap { .. } => "digest_gap",
            ObsEvent::FleetOverBudget { .. } => "fleet_over_budget",
            ObsEvent::ServerOverdraw { .. } => "server_overdraw",
            ObsEvent::BreakerTrip { .. } => "breaker_trip",
            ObsEvent::BreakerRelease => "breaker_release",
            ObsEvent::EmergencyClamp { .. } => "emergency_clamp",
            ObsEvent::HeartbeatMissed { .. } => "heartbeat_missed",
            ObsEvent::FallbackEngage { .. } => "fallback_engage",
            ObsEvent::FallbackDecay { .. } => "fallback_decay",
            ObsEvent::FallbackRelease { .. } => "fallback_release",
        }
    }

    /// The app this event concerns, when it concerns exactly one.
    pub fn app(&self) -> Option<&str> {
        match self {
            ObsEvent::Allocation { app, .. }
            | ObsEvent::Arrival { app }
            | ObsEvent::Departure { app }
            | ObsEvent::Drift { app }
            | ObsEvent::ActuationFault { app }
            | ObsEvent::Probe { app, .. }
            | ObsEvent::KnobWrite { app, .. }
            | ObsEvent::ForceThrottle { app }
            | ObsEvent::StorePublish { app, .. }
            | ObsEvent::StoreTombstone { app, .. }
            | ObsEvent::HeartbeatClampBound { app, .. }
            | ObsEvent::TrustDowngrade { app, .. }
            | ObsEvent::Quarantine { app, .. }
            | ObsEvent::Clawback { app, .. }
            | ObsEvent::IntegrityFault { app }
            | ObsEvent::DemandSpike { app, .. }
            | ObsEvent::SloWindow { app, .. } => Some(app),
            _ => None,
        }
    }
}

/// A journal entry: an [`ObsEvent`] plus its causal coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotone sequence number, never reused even across eviction.
    pub seq: u64,
    /// Simulation time the event was emitted at.
    pub at: Seconds,
    /// Poll sequence number active when the event fired (0 before the
    /// first poll).
    pub poll: u64,
    /// Control-plane epoch active when the event fired (0 for a
    /// standalone server).
    pub epoch: u64,
    /// The decision itself.
    pub event: ObsEvent,
}

/// A bounded ring buffer of [`EventRecord`]s.
///
/// When full, the oldest record is evicted to admit the newest — the
/// flight-recorder discipline: recent history is always present,
/// ancient history is summarized by the metrics registry's counters. A
/// capacity of zero stores nothing (every record counts as evicted),
/// which keeps an attached-but-journalless configuration legal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventJournal {
    capacity: usize,
    ring: std::collections::VecDeque<EventRecord>,
    next_seq: u64,
    evicted: u64,
}

impl EventJournal {
    /// Creates an empty journal holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            // Reserve lazily for large capacities: a journal attached to
            // a short smoke run should not pre-commit 64 Ki slots.
            ring: std::collections::VecDeque::new(),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Appends an event, assigning the next sequence number. Returns
    /// the sequence number assigned.
    pub fn record(&mut self, at: Seconds, poll: u64, epoch: u64, event: ObsEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return seq;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(EventRecord {
            seq,
            at,
            poll,
            epoch,
            event,
        });
        seq
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted (or dropped, at capacity zero) so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total records ever appended (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Iterates the retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.ring.iter()
    }

    /// The most recent record, if any.
    pub fn latest(&self) -> Option<&EventRecord> {
        self.ring.back()
    }

    /// Extracts a bounded delta digest of everything recorded since the
    /// receiver's watermark `since` (the first unacknowledged sequence
    /// number).
    ///
    /// Entries are contiguous and oldest-first, so acknowledging
    /// [`JournalDigest::ack_to`] never skips an unshipped record. The
    /// digest is size-capped at roughly `max_bytes` of deterministic
    /// encoding — a digest must survive a lossy link as one frame — with
    /// two carve-outs: the first record always ships even when it alone
    /// exceeds the budget (progress beats the cap), and everything past
    /// the budget is counted in [`JournalDigest::truncated`] and left
    /// for the next wave. When the ring wrapped past unshipped records,
    /// the digest leads with a synthesized [`ObsEvent::DigestGap`]
    /// carrying the dropped count, stamped with the oldest survivor's
    /// coordinates so every re-ship regenerates the identical gap record
    /// and the idempotent fleet merge dedups it.
    pub fn digest_since(&self, server_id: u64, since: u64, max_bytes: usize) -> JournalDigest {
        let oldest_retained = self.ring.front().map_or(self.next_seq, |r| r.seq);
        let resume_at = oldest_retained.max(since);
        let dropped = resume_at - since;
        let wrapped = dropped > 0;
        let mut entries = Vec::new();
        let mut bytes = DIGEST_HEADER_BYTES;
        let mut truncated = 0u64;
        if wrapped {
            let (at, poll, epoch) = self
                .ring
                .front()
                .map_or((Seconds::ZERO, 0, 0), |r| (r.at, r.poll, r.epoch));
            let gap = EventRecord {
                seq: since,
                at,
                poll,
                epoch,
                event: ObsEvent::DigestGap { dropped },
            };
            bytes += encoded_cost(&gap);
            entries.push(gap);
        }
        let mut shipping = true;
        for rec in self.ring.iter() {
            if rec.seq < resume_at {
                continue;
            }
            let cost = encoded_cost(rec);
            if shipping && (bytes + cost <= max_bytes || entries.is_empty()) {
                bytes += cost;
                entries.push(rec.clone());
            } else {
                // The delta must stay contiguous: once one record is
                // over budget, everything after it waits too.
                shipping = false;
                truncated += 1;
            }
        }
        JournalDigest {
            server_id,
            since,
            entries,
            wrapped,
            dropped,
            truncated,
            bytes: bytes as u64,
        }
    }
}

/// Fixed per-digest overhead charged by [`JournalDigest::bytes`]
/// (server id, watermark, flags) on top of the per-record encoding cost.
const DIGEST_HEADER_BYTES: usize = 32;

/// Deterministic wire-size estimate of one record: the length of its
/// `Debug` encoding, which is also what [`Obs::digest`] folds — so the
/// byte cap and the determinism fingerprint agree on what a record is.
fn encoded_cost(rec: &EventRecord) -> usize {
    format!("{rec:?}").len()
}

/// Reserved `server_id` under which a manager merges its own journal
/// (including the control plane's mirrored fault events) into a
/// [`FleetTimeline`].
pub const MANAGER_SERVER_ID: u64 = u64::MAX;

/// A bounded delta of one server's journal, shipped over the control
/// plane (see [`EventJournal::digest_since`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDigest {
    /// The shipping server's fleet-wide id.
    pub server_id: u64,
    /// The watermark this digest is a delta against: the first sequence
    /// number the receiver had not acknowledged.
    pub since: u64,
    /// Records with `seq >= since`, contiguous and oldest-first. When
    /// the ring wrapped past unshipped records the first entry is a
    /// synthesized [`ObsEvent::DigestGap`].
    pub entries: Vec<EventRecord>,
    /// True when the ring overwrote records in `since..` before they
    /// could ship — the blind spot the gap entry marks.
    pub wrapped: bool,
    /// Unshipped records lost to the wraparound.
    pub dropped: u64,
    /// Records past the byte budget, left for the next wave.
    pub truncated: u64,
    /// Deterministic wire-size estimate of this digest.
    pub bytes: u64,
}

impl JournalDigest {
    /// The watermark the receiver should advance to after merging: one
    /// past the newest record shipped, or past the wraparound hole when
    /// nothing beyond it fit. Acknowledging this is safe because entries
    /// are contiguous — nothing below it remains unshipped.
    pub fn ack_to(&self) -> u64 {
        let past_hole = if self.wrapped {
            self.since + self.dropped
        } else {
            self.since
        };
        self.entries
            .iter()
            .map(|r| r.seq + 1)
            .fold(past_hole, u64::max)
    }

    /// True when the digest carries nothing (no new records, no gap).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One entry in a merged fleet timeline: a journal record plus the
/// server it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRecord {
    /// The originating server ([`MANAGER_SERVER_ID`] for the manager's
    /// own journal).
    pub server_id: u64,
    /// The journal record.
    pub record: EventRecord,
}

/// The total order a [`FleetTimeline`] merges under:
/// `(epoch, poll_seq, server_id, seq)`.
pub type FleetKey = (u64, u64, u64, u64);

/// The manager's merged, queryable view of every journal in the fleet.
///
/// Records land keyed by `(epoch, poll_seq, server_id, seq)`, so the
/// merge is insert-if-absent over a total order: commutative and
/// idempotent by construction. That is what makes the shipping protocol
/// trivially robust — agents re-ship their entire unacknowledged
/// backlog every wave, and duplication under retry, reorder, or delayed
/// delivery costs nothing but a dedup counter bump. Same-seed runs
/// produce byte-identical timelines (the `ext_obs` fleet smoke
/// enforces it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTimeline {
    entries: BTreeMap<FleetKey, FleetRecord>,
    merged: u64,
    deduped: u64,
}

impl FleetTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The merge key of `record` as shipped by `server_id`.
    pub fn key(server_id: u64, record: &EventRecord) -> FleetKey {
        (record.epoch, record.poll, server_id, record.seq)
    }

    /// Inserts one record if its key is absent. Returns whether it was
    /// added (false = dedup).
    pub fn insert(&mut self, server_id: u64, record: EventRecord) -> bool {
        match self.entries.entry(Self::key(server_id, &record)) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(FleetRecord { server_id, record });
                self.merged += 1;
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                self.deduped += 1;
                false
            }
        }
    }

    /// Merges one shipped digest; returns how many records were new.
    pub fn merge_digest(&mut self, digest: &JournalDigest) -> u64 {
        self.merge_records(digest.server_id, &digest.entries)
    }

    /// Merges a batch of records from one server; returns how many were
    /// new.
    pub fn merge_records(&mut self, server_id: u64, records: &[EventRecord]) -> u64 {
        records
            .iter()
            .filter(|r| self.insert(server_id, (*r).clone()))
            .count() as u64
    }

    /// Merges another timeline in (union of entries).
    pub fn merge(&mut self, other: &FleetTimeline) {
        for entry in other.iter() {
            self.insert(entry.server_id, entry.record.clone());
        }
    }

    /// Number of merged records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has merged yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records accepted as new across all merges.
    pub fn merged_total(&self) -> u64 {
        self.merged
    }

    /// Records rejected as duplicates across all merges — the price of
    /// re-ship-everything, which the idempotent merge makes zero.
    pub fn dedup_total(&self) -> u64 {
        self.deduped
    }

    /// Iterates the merged records in `(epoch, poll, server, seq)`
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = &FleetRecord> {
        self.entries.values()
    }

    /// FNV-1a digest over the merged records in key order — the
    /// byte-identity fingerprint the fleet `ext_obs --smoke` double-run
    /// compares across processes.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for entry in self.entries.values() {
            fold(&entry.server_id.to_le_bytes());
            fold(format!("{:?}", entry.record).as_bytes());
        }
        hash
    }
}

/// Configuration for the observability plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Ring-buffer bound for the event journal (0 disables retention
    /// but keeps counting).
    pub journal_capacity: usize,
    /// Whether wall-clock self-profiling spans are recorded. Spans are
    /// excluded from [`Obs::digest`] either way (wall time is not
    /// deterministic), so this only controls the cost of `Instant`
    /// reads.
    pub spans: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            journal_capacity: 65_536,
            spans: true,
        }
    }
}

/// Interior state behind the [`Obs`] handle.
#[derive(Debug)]
struct ObsCore {
    config: ObsConfig,
    journal: EventJournal,
    metrics: MetricsRegistry,
    /// Per-kind event tallies, kept on `&'static str` keys so the emit
    /// hot path never allocates; rendered into the registry's
    /// `events_total` / `events_by_kind_total{kind="…"}` counters only
    /// when a snapshot is taken.
    by_kind: BTreeMap<&'static str, u64>,
    poll: u64,
    epoch: u64,
    last_rate: BTreeMap<String, f64>,
}

impl ObsCore {
    /// The registry with the deferred per-kind event tallies folded in —
    /// what [`Obs::metrics`] and [`Obs::digest`] observe.
    fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = self.metrics.clone();
        let mut total = 0;
        for (&kind, &n) in &self.by_kind {
            merged.inc_by(&prom_label("events_by_kind_total", &[("kind", kind)]), n);
            total += n;
        }
        if total > 0 {
            merged.inc_by("events_total", total);
        }
        merged
    }
}

/// A cloneable handle on one observability plane.
///
/// Producers (`PowerMediator`, `ServerSim`, `ControlPlane`, agents)
/// each hold an `Option<Obs>`; cloning the handle shares the same
/// journal and registry, so a server's simulator and mediator write
/// interleaved records into one flight recorder. The mutex is
/// `parking_lot`'s (no poisoning), matching
/// [`crate::recorder::SharedRecorder`].
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<parking_lot::Mutex<ObsCore>>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

impl Obs {
    /// Creates a fresh plane under `config`.
    pub fn new(config: ObsConfig) -> Self {
        let journal = EventJournal::new(config.journal_capacity);
        Self {
            inner: Arc::new(parking_lot::Mutex::new(ObsCore {
                config,
                journal,
                metrics: MetricsRegistry::new(),
                by_kind: BTreeMap::new(),
                poll: 0,
                epoch: 0,
                last_rate: BTreeMap::new(),
            })),
        }
    }

    /// Starts a new accounting poll and returns its sequence number
    /// (1-based; 0 means "before the first poll").
    pub fn begin_poll(&self) -> u64 {
        let mut core = self.inner.lock();
        core.poll += 1;
        core.metrics.inc("polls_total");
        core.poll
    }

    /// The current poll sequence number.
    pub fn poll(&self) -> u64 {
        self.inner.lock().poll
    }

    /// Sets the control-plane epoch stamped on subsequent records.
    pub fn set_epoch(&self, epoch: u64) {
        self.inner.lock().epoch = epoch;
    }

    /// Appends `event` to the journal at simulation time `at`, stamped
    /// with the current poll and epoch, and bumps the total and
    /// per-kind event counters.
    ///
    /// The per-kind tally is kept on `&'static str` keys here and only
    /// rendered into Prometheus-labeled counter names at snapshot time
    /// ([`Obs::metrics`] / [`Obs::digest`]), so this hot path does one
    /// lock, one map bump and one ring push — no string formatting.
    pub fn emit(&self, at: Seconds, event: ObsEvent) {
        let mut core = self.inner.lock();
        *core.by_kind.entry(event.kind()).or_insert(0) += 1;
        let (poll, epoch) = (core.poll, core.epoch);
        core.journal.record(at, poll, epoch, event);
    }

    /// Increments the counter `name`.
    pub fn inc(&self, name: &str) {
        self.inner.lock().metrics.inc(name);
    }

    /// Increments the counter `name` by `by`.
    pub fn inc_by(&self, name: &str, by: u64) {
        self.inner.lock().metrics.inc_by(name, by);
    }

    /// Sets the gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.inner.lock().metrics.set_gauge(name, v);
    }

    /// Records `v` into the histogram `name` (default log layout).
    pub fn observe(&self, name: &str, v: f64) {
        self.inner.lock().metrics.observe(name, v);
    }

    /// Feeds one heartbeat-rate reading for `app`; the absolute change
    /// versus the previous reading lands in the `heartbeat_jitter_hz`
    /// histogram. Rates are simulation-derived, so this stays
    /// deterministic and digest-safe.
    pub fn note_heartbeat(&self, app: &str, rate: f64) {
        let mut guard = self.inner.lock();
        let core = &mut *guard;
        if let Some(prev) = core.last_rate.get_mut(app) {
            let jitter = (rate - *prev).abs();
            *prev = rate;
            core.metrics.observe("heartbeat_jitter_hz", jitter);
        } else {
            // First reading for this app: the only allocating path.
            core.last_rate.insert(app.to_string(), rate);
        }
    }

    /// Opens a wall-clock self-profiling span; the elapsed seconds land
    /// in `span_seconds{name="…"}` when the guard drops. A no-op guard
    /// is returned when spans are disabled in the config. Span
    /// histograms never enter [`Obs::digest`].
    pub fn span(&self, name: &'static str) -> ObsSpan {
        let enabled = self.inner.lock().config.spans;
        ObsSpan {
            obs: enabled.then(|| self.clone()),
            name,
            started: std::time::Instant::now(),
        }
    }

    /// A copy of the retained journal records, oldest-first.
    pub fn journal_snapshot(&self) -> Vec<EventRecord> {
        self.inner.lock().journal.iter().cloned().collect()
    }

    /// Extracts a bounded shipping digest of the journal since the
    /// receiver's watermark (see [`EventJournal::digest_since`]).
    pub fn digest_since(&self, server_id: u64, since: u64, max_bytes: usize) -> JournalDigest {
        self.inner
            .lock()
            .journal
            .digest_since(server_id, since, max_bytes)
    }

    /// Retained records with `seq >= since`, oldest-first — how a
    /// manager folds its own journal into a fleet timeline without
    /// re-copying what it already merged.
    pub fn records_since(&self, since: u64) -> Vec<EventRecord> {
        self.inner
            .lock()
            .journal
            .iter()
            .filter(|r| r.seq >= since)
            .cloned()
            .collect()
    }

    /// `(retained, evicted, total)` journal record counts.
    pub fn journal_counts(&self) -> (usize, u64, u64) {
        let core = self.inner.lock();
        (
            core.journal.len(),
            core.journal.evicted(),
            core.journal.total_recorded(),
        )
    }

    /// A copy of the metrics registry, with the deferred per-kind event
    /// tallies folded into `events_total` and
    /// `events_by_kind_total{kind="…"}`.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.lock().merged_metrics()
    }

    /// Registers a custom histogram layout under `name`.
    pub fn register_histogram(&self, name: &str, histogram: Histogram) {
        self.inner
            .lock()
            .metrics
            .register_histogram(name, histogram);
    }

    /// FNV-1a digest over the journal and the deterministic part of the
    /// registry. Instruments whose family starts with `span_` carry
    /// wall-clock samples and are excluded, so the digest is stable
    /// across machines and runs — the property the `ext_obs --smoke`
    /// double-run check in CI asserts.
    pub fn digest(&self) -> u64 {
        let core = self.inner.lock();
        let merged = core.merged_metrics();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for rec in core.journal.iter() {
            fold(format!("{rec:?}").as_bytes());
        }
        for (name, value) in merged.counters() {
            if name.starts_with("span_") {
                continue;
            }
            fold(name.as_bytes());
            fold(&value.to_le_bytes());
        }
        for (name, value) in merged.gauges() {
            if name.starts_with("span_") {
                continue;
            }
            fold(name.as_bytes());
            fold(&value.to_bits().to_le_bytes());
        }
        for (name, hist) in merged.histograms() {
            if name.starts_with("span_") {
                continue;
            }
            fold(name.as_bytes());
            for &b in hist.buckets() {
                fold(&b.to_le_bytes());
            }
            fold(&hist.count().to_le_bytes());
            fold(&hist.sum().to_bits().to_le_bytes());
        }
        hash
    }
}

/// RAII guard for a wall-clock span opened by [`Obs::span`].
#[derive(Debug)]
pub struct ObsSpan {
    obs: Option<Obs>,
    name: &'static str,
    started: std::time::Instant,
}

impl Drop for ObsSpan {
    fn drop(&mut self) {
        if let Some(obs) = self.obs.take() {
            let elapsed = self.started.elapsed().as_secs_f64();
            obs.observe(&prom_label("span_seconds", &[("name", self.name)]), elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: f64) -> Seconds {
        Seconds::new(t)
    }

    #[test]
    fn journal_retains_in_order_and_assigns_sequence_numbers() {
        let mut j = EventJournal::new(8);
        for i in 0..3 {
            let seq = j.record(at(i as f64), i, 0, ObsEvent::CapChanged { cap_w: 80.0 });
            assert_eq!(seq, i);
        }
        let seqs: Vec<u64> = j.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(j.evicted(), 0);
        assert_eq!(j.latest().unwrap().poll, 2);
    }

    #[test]
    fn journal_wraparound_evicts_oldest_first() {
        let mut j = EventJournal::new(3);
        for i in 0..7u64 {
            j.record(
                at(i as f64),
                i,
                0,
                ObsEvent::UplinkSent { server: 0, step: i },
            );
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 4);
        assert_eq!(j.total_recorded(), 7);
        let seqs: Vec<u64> = j.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest evicted, order preserved");
    }

    #[test]
    fn journal_capacity_one_keeps_only_the_latest() {
        let mut j = EventJournal::new(1);
        j.record(at(0.0), 1, 0, ObsEvent::ManagerCrash);
        j.record(at(1.0), 2, 0, ObsEvent::ManagerTakeover);
        assert_eq!(j.len(), 1);
        assert_eq!(j.latest().unwrap().event, ObsEvent::ManagerTakeover);
        assert_eq!(j.evicted(), 1);
    }

    #[test]
    fn journal_capacity_zero_counts_but_stores_nothing() {
        let mut j = EventJournal::new(0);
        let seq0 = j.record(at(0.0), 0, 0, ObsEvent::ManagerCrash);
        let seq1 = j.record(at(1.0), 0, 0, ObsEvent::ManagerTakeover);
        assert_eq!((seq0, seq1), (0, 1), "sequence numbers still advance");
        assert!(j.is_empty());
        assert_eq!(j.evicted(), 2);
        assert_eq!(j.total_recorded(), 2);
    }

    #[test]
    fn obs_emit_stamps_poll_epoch_and_counts_by_kind() {
        let obs = Obs::new(ObsConfig::default());
        obs.set_epoch(7);
        let poll = obs.begin_poll();
        assert_eq!(poll, 1);
        obs.emit(
            at(0.5),
            ObsEvent::Arrival {
                app: "stream".into(),
            },
        );
        obs.emit(
            at(0.5),
            ObsEvent::SafeMode {
                transition: SafeModeTransition::Engaged,
            },
        );
        let records = obs.journal_snapshot();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.poll == 1 && r.epoch == 7));
        let m = obs.metrics();
        assert_eq!(m.counter("events_total"), 2);
        assert_eq!(m.counter("events_by_kind_total{kind=\"arrival\"}"), 1);
        assert_eq!(m.counter("events_by_kind_total{kind=\"safe_mode\"}"), 1);
        assert_eq!(m.counter("polls_total"), 1);
    }

    #[test]
    fn heartbeat_jitter_measures_rate_deltas() {
        let obs = Obs::new(ObsConfig::default());
        obs.note_heartbeat("stream", 100.0);
        obs.note_heartbeat("stream", 103.0);
        obs.note_heartbeat("stream", 101.0);
        obs.note_heartbeat("kmeans", 50.0); // first reading: no jitter yet
        let m = obs.metrics();
        let h = m.histogram("heartbeat_jitter_hz").expect("recorded");
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spans_record_only_when_enabled_and_never_enter_the_digest() {
        let on = Obs::new(ObsConfig::default());
        {
            let _guard = on.span("plan");
        }
        assert_eq!(
            on.metrics()
                .histogram("span_seconds{name=\"plan\"}")
                .map(Histogram::count),
            Some(1)
        );

        let off = Obs::new(ObsConfig {
            spans: false,
            ..ObsConfig::default()
        });
        {
            let _guard = off.span("plan");
        }
        assert!(off
            .metrics()
            .histogram("span_seconds{name=\"plan\"}")
            .is_none());

        // Same deterministic content, differing span samples → same digest.
        let twin = Obs::new(ObsConfig::default());
        {
            let _guard = twin.span("plan");
        }
        {
            let _guard = twin.span("plan");
        }
        on.emit(at(1.0), ObsEvent::ManagerCrash);
        twin.emit(at(1.0), ObsEvent::ManagerCrash);
        assert_eq!(on.digest(), twin.digest());
    }

    #[test]
    fn digest_is_sensitive_to_journal_content() {
        let a = Obs::new(ObsConfig::default());
        let b = Obs::new(ObsConfig::default());
        a.emit(at(0.0), ObsEvent::NodeCrash { server: 1 });
        b.emit(at(0.0), ObsEvent::NodeCrash { server: 2 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn event_kind_and_app_accessors() {
        let e = ObsEvent::KnobWrite {
            app: "stream".into(),
            verdict: KnobWriteVerdict::Deferred,
            attempts: 1,
        };
        assert_eq!(e.kind(), "knob_write");
        assert_eq!(e.app(), Some("stream"));
        assert_eq!(ObsEvent::ManagerCrash.app(), None);
    }

    #[test]
    fn cloned_handles_share_one_plane() {
        let obs = Obs::new(ObsConfig::default());
        let twin = obs.clone();
        twin.inc("knob_writes_total");
        obs.emit(at(0.0), ObsEvent::EndpointLoss { server: 3 });
        assert_eq!(obs.metrics().counter("knob_writes_total"), 1);
        assert_eq!(twin.journal_snapshot().len(), 1);
    }

    fn filled(capacity: usize, events: u64) -> EventJournal {
        let mut j = EventJournal::new(capacity);
        for i in 0..events {
            j.record(
                at(i as f64),
                i + 1,
                0,
                ObsEvent::UplinkSent { server: 0, step: i },
            );
        }
        j
    }

    #[test]
    fn digest_is_a_contiguous_delta_since_the_watermark() {
        let j = filled(64, 10);
        let d = j.digest_since(3, 4, 1 << 16);
        assert!(!d.wrapped);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.truncated, 0);
        let seqs: Vec<u64> = d.entries.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(d.ack_to(), 10);
        assert_eq!(d.server_id, 3);
        // Fully acked: the next digest is empty and holds the watermark.
        let empty = j.digest_since(3, d.ack_to(), 1 << 16);
        assert!(empty.is_empty());
        assert_eq!(empty.ack_to(), 10);
    }

    #[test]
    fn digest_byte_cap_truncates_but_the_watermark_still_advances() {
        let j = filled(64, 12);
        let mut since = 0u64;
        let mut waves = 0;
        // A budget this small admits one record per wave (the first
        // record always ships): repeated extraction walks the whole
        // journal without skipping or repeating a record.
        let mut shipped = Vec::new();
        while since < j.total_recorded() {
            let d = j.digest_since(0, since, 1);
            assert_eq!(d.entries.len(), 1, "one record per starved wave");
            assert!(d.truncated > 0 || d.ack_to() == j.total_recorded());
            shipped.extend(d.entries.iter().map(|r| r.seq));
            assert!(d.ack_to() > since, "progress under any budget");
            since = d.ack_to();
            waves += 1;
        }
        assert_eq!(waves, 12);
        assert_eq!(shipped, (0..12).collect::<Vec<u64>>());
        // A roomy budget ships everything in one wave, within bound.
        let d = j.digest_since(0, 0, 1 << 16);
        assert_eq!(d.entries.len(), 12);
        assert!(d.bytes <= 1 << 16);
    }

    #[test]
    fn wraparound_marks_a_digest_gap_at_cap_one() {
        // Capacity 1: three events recorded, only seq 2 survives. The
        // digest must lead with a DigestGap for the two lost records —
        // synthesized, not stored, so the ring itself never recursed.
        let j = filled(1, 3);
        let d = j.digest_since(0, 0, 1 << 16);
        assert!(d.wrapped);
        assert_eq!(d.dropped, 2);
        assert_eq!(d.entries.len(), 2);
        assert_eq!(d.entries[0].seq, 0, "gap sits at the first lost seq");
        assert_eq!(d.entries[0].event, ObsEvent::DigestGap { dropped: 2 });
        assert_eq!(d.entries[1].seq, 2);
        assert_eq!(d.ack_to(), 3);
        // Re-shipping regenerates the identical gap record.
        assert_eq!(j.digest_since(0, 0, 1 << 16), d);
    }

    #[test]
    fn wraparound_marks_a_digest_gap_at_cap_two() {
        let j = filled(2, 5);
        let d = j.digest_since(0, 1, 1 << 16);
        assert!(d.wrapped);
        assert_eq!(d.dropped, 2, "seqs 1 and 2 were overwritten unshipped");
        assert_eq!(d.entries[0].event, ObsEvent::DigestGap { dropped: 2 });
        assert_eq!(d.entries[0].seq, 1);
        let seqs: Vec<u64> = d.entries.iter().skip(1).map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(d.ack_to(), 5);
        // Already-acked evictions are not a gap.
        let clean = j.digest_since(0, 3, 1 << 16);
        assert!(!clean.wrapped);
        assert_eq!(clean.dropped, 0);
    }

    #[test]
    fn empty_ring_past_the_watermark_is_all_gap() {
        let j = filled(0, 4);
        let d = j.digest_since(0, 0, 1 << 16);
        assert!(d.wrapped);
        assert_eq!(d.dropped, 4);
        assert_eq!(d.entries.len(), 1, "only the gap marker ships");
        assert_eq!(d.ack_to(), 4, "the hole itself is acknowledged");
    }

    #[test]
    fn fleet_merge_is_idempotent_and_counts_dedup() {
        let j = filled(64, 6);
        let d = j.digest_since(7, 0, 1 << 16);
        let mut t = FleetTimeline::new();
        assert_eq!(t.merge_digest(&d), 6);
        assert_eq!(t.merge_digest(&d), 0, "re-ship merges nothing new");
        assert_eq!(t.len(), 6);
        assert_eq!(t.merged_total(), 6);
        assert_eq!(t.dedup_total(), 6);
        assert!(t.iter().all(|e| e.server_id == 7));
    }

    #[test]
    fn fleet_timeline_orders_by_epoch_poll_server_seq() {
        let rec = |seq, poll, epoch| EventRecord {
            seq,
            at: at(0.0),
            poll,
            epoch,
            event: ObsEvent::ManagerCrash,
        };
        let mut t = FleetTimeline::new();
        t.insert(1, rec(5, 2, 1));
        t.insert(0, rec(9, 2, 1));
        t.insert(2, rec(0, 1, 2));
        t.insert(0, rec(3, 9, 0));
        let keys: Vec<FleetKey> = t
            .iter()
            .map(|e| FleetTimeline::key(e.server_id, &e.record))
            .collect();
        assert_eq!(
            keys,
            vec![(0, 9, 0, 3), (1, 2, 0, 9), (1, 2, 1, 5), (2, 1, 2, 0)]
        );
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "iteration follows the merge key order");
    }

    #[test]
    fn fleet_digest_is_sensitive_to_content_and_provenance() {
        let j = filled(64, 3);
        let mut a = FleetTimeline::new();
        let mut b = FleetTimeline::new();
        a.merge_digest(&j.digest_since(0, 0, 1 << 16));
        b.merge_digest(&j.digest_since(1, 0, 1 << 16));
        assert_ne!(a.digest(), b.digest(), "same records, different server");
        let mut twin = FleetTimeline::new();
        twin.merge_digest(&j.digest_since(0, 0, 1 << 16));
        assert_eq!(a.digest(), twin.digest());
    }

    /// Deterministic splitmix64 helper for the property tests below.
    fn mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A generated fleet: per-server record streams with varied epochs
    /// and polls, derived entirely from `seed`.
    fn generated_fleet(seed: u64) -> Vec<(u64, Vec<EventRecord>)> {
        let mut s = seed;
        let servers = 1 + (mix64(&mut s) % 4) as usize;
        (0..servers as u64)
            .map(|sid| {
                let n = mix64(&mut s) % 24;
                let mut epoch = 0u64;
                let mut poll = 0u64;
                let records = (0..n)
                    .map(|seq| {
                        epoch += mix64(&mut s) % 2;
                        poll += mix64(&mut s) % 3;
                        EventRecord {
                            seq,
                            at: at(seq as f64),
                            poll,
                            epoch,
                            event: ObsEvent::UplinkSent {
                                server: sid as usize,
                                step: mix64(&mut s) % 100,
                            },
                        }
                    })
                    .collect();
                (sid, records)
            })
            .collect()
    }

    proptest::proptest! {
        /// Merging the same digest set in any delivery order — with
        /// duplication, reordering, and delayed (split) delivery — lands
        /// on the same timeline: the merge is commutative and idempotent.
        #[test]
        fn prop_merge_commutes_under_duplication_reorder_and_delay(
            seed in 0u64..u64::MAX,
            split in 1usize..8,
        ) {
            let fleet = generated_fleet(seed);
            // In-order, whole-stream delivery.
            let mut reference = FleetTimeline::new();
            for (sid, records) in &fleet {
                reference.merge_records(*sid, records);
            }
            // Adversarial delivery: streams split into waves, waves
            // delivered server-interleaved in reverse, every wave
            // delivered twice (retry duplication).
            let mut waves: Vec<(u64, &[EventRecord])> = Vec::new();
            for (sid, records) in &fleet {
                for chunk in records.chunks(split) {
                    waves.push((*sid, chunk));
                }
            }
            waves.reverse();
            let mut adversarial = FleetTimeline::new();
            for (sid, chunk) in &waves {
                adversarial.merge_records(*sid, chunk);
                adversarial.merge_records(*sid, chunk);
            }
            proptest::prop_assert_eq!(reference.len(), adversarial.len());
            proptest::prop_assert_eq!(reference.digest(), adversarial.digest());
            // Every record was delivered exactly twice.
            proptest::prop_assert_eq!(adversarial.dedup_total(), adversarial.merged_total());
            // Idempotence at the timeline level too.
            let before = adversarial.digest();
            let twin = adversarial.clone();
            adversarial.merge(&twin);
            proptest::prop_assert_eq!(adversarial.digest(), before);
        }

        /// The `(epoch, poll, server, seq)` key is a total order on any
        /// generated digest set: all keys are distinct (seq is unique
        /// per server) and iteration is strictly increasing.
        #[test]
        fn prop_merge_key_orders_generated_digest_sets_totally(
            seed in 0u64..u64::MAX,
        ) {
            let fleet = generated_fleet(seed);
            let mut t = FleetTimeline::new();
            let mut pushed = 0u64;
            for (sid, records) in &fleet {
                pushed += records.len() as u64;
                t.merge_records(*sid, records);
            }
            // seq is unique per server, so there are no key collisions.
            proptest::prop_assert_eq!(t.len() as u64, pushed);
            let keys: Vec<FleetKey> = t
                .iter()
                .map(|e| FleetTimeline::key(e.server_id, &e.record))
                .collect();
            for w in keys.windows(2) {
                proptest::prop_assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
            }
        }
    }
}
