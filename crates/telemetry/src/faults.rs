//! Fault accounting: counters for injected substrate faults and for the
//! runtime's degradation responses.
//!
//! The simulated substrate (see `powermed-sim`'s fault injector) counts
//! every fault it injects in a [`FaultStats`]; the hardened mediator
//! counts every mitigation it performs in a [`HardeningStats`]. Both are
//! plain counter structs so experiments can diff them across runs, and
//! both are surfaced through the [`crate::recorder::TraceRecorder`] as
//! time series by their owners.

use serde::{Deserialize, Serialize};

/// Counters for faults injected into the simulated substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Knob writes rejected outright (the actuation returned an error).
    pub knob_rejections: u64,
    /// Knob writes that silently left the stale setting in force.
    pub knob_stale: u64,
    /// Knob writes that applied only partially (DVFS landed, core
    /// allocation did not).
    pub knob_partial: u64,
    /// Meter samples replaced by a held (stuck) reading.
    pub meter_stuck: u64,
    /// Meter samples dropped entirely (the runtime observed nothing).
    pub meter_dropouts: u64,
    /// Meter samples perturbed by multiplicative noise.
    pub meter_noisy: u64,
    /// Non-idle ESD commands silently ignored by a stuck device.
    pub esd_commands_ignored: u64,
    /// Application crash events.
    pub app_crashes: u64,
    /// Application restart events (a crashed app resumed).
    pub app_restarts: u64,
}

impl FaultStats {
    /// Total number of discrete fault events (noise perturbations are
    /// continuous and excluded; stuck/dropout/rejection/crash count).
    pub fn total_events(&self) -> u64 {
        self.knob_rejections
            + self.knob_stale
            + self.knob_partial
            + self.meter_stuck
            + self.meter_dropouts
            + self.esd_commands_ignored
            + self.app_crashes
            + self.app_restarts
    }
}

/// Counters for the hardened mediator's degradation responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardeningStats {
    /// Actuation retries attempted (each backoff-scheduled reattempt).
    pub retries: u64,
    /// Actuations abandoned after the retry budget was exhausted
    /// (each fires an E5 `ActuationFault`).
    pub actuation_faults: u64,
    /// Sensor-fault episodes detected (each fires an E6 `SensorFault`).
    pub sensor_faults: u64,
    /// Safe-mode engagements (forced throttle to minimum knobs).
    pub safe_mode_entries: u64,
    /// Safe-mode releases (breach cleared, normal planning resumed).
    pub safe_mode_exits: u64,
    /// Safe-mode escalations (breach persisted at minimum knobs, all
    /// applications parked).
    pub safe_mode_escalations: u64,
    /// Calibrations skipped because the application departed mid-probe.
    pub skipped_calibrations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_discrete_events() {
        let s = FaultStats {
            knob_rejections: 1,
            knob_stale: 2,
            knob_partial: 3,
            meter_stuck: 4,
            meter_dropouts: 5,
            meter_noisy: 100,
            esd_commands_ignored: 6,
            app_crashes: 7,
            app_restarts: 8,
        };
        assert_eq!(s.total_events(), 36, "noise is not a discrete event");
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(FaultStats::default().total_events(), 0);
        let h = HardeningStats::default();
        assert_eq!(h.retries, 0);
        assert_eq!(h.safe_mode_entries, 0);
    }
}
