//! Fault accounting: counters for injected substrate faults and for the
//! runtime's degradation responses.
//!
//! The simulated substrate (see `powermed-sim`'s fault injector) counts
//! every fault it injects in a [`FaultStats`]; the hardened mediator
//! counts every mitigation it performs in a [`HardeningStats`]. Both are
//! plain counter structs so experiments can diff them across runs, and
//! both are surfaced through the [`crate::recorder::TraceRecorder`] as
//! time series by their owners.

use serde::{Deserialize, Serialize};

/// Counters for faults injected into the simulated substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Knob writes rejected outright (the actuation returned an error).
    pub knob_rejections: u64,
    /// Knob writes that silently left the stale setting in force.
    pub knob_stale: u64,
    /// Knob writes that applied only partially (DVFS landed, core
    /// allocation did not).
    pub knob_partial: u64,
    /// Meter samples replaced by a held (stuck) reading.
    pub meter_stuck: u64,
    /// Meter samples dropped entirely (the runtime observed nothing).
    pub meter_dropouts: u64,
    /// Meter samples perturbed by multiplicative noise.
    pub meter_noisy: u64,
    /// Meter samples skewed by the shared (whole-meter) bias — the
    /// correlated error mode every per-app share inherits at once.
    pub meter_biased: u64,
    /// Non-idle ESD commands silently ignored by a stuck device.
    pub esd_commands_ignored: u64,
    /// Application crash events.
    pub app_crashes: u64,
    /// Application restart events (a crashed app resumed).
    pub app_restarts: u64,
}

impl FaultStats {
    /// Total number of discrete fault events (noise perturbations and
    /// the continuous shared bias are excluded;
    /// stuck/dropout/rejection/crash count).
    pub fn total_events(&self) -> u64 {
        self.knob_rejections
            + self.knob_stale
            + self.knob_partial
            + self.meter_stuck
            + self.meter_dropouts
            + self.esd_commands_ignored
            + self.app_crashes
            + self.app_restarts
    }
}

/// Counters for the hardened mediator's degradation responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardeningStats {
    /// Actuation retries attempted (each backoff-scheduled reattempt).
    pub retries: u64,
    /// Actuations abandoned after the retry budget was exhausted
    /// (each fires an E5 `ActuationFault`).
    pub actuation_faults: u64,
    /// Sensor-fault episodes detected (each fires an E6 `SensorFault`).
    pub sensor_faults: u64,
    /// Safe-mode engagements (forced throttle to minimum knobs).
    pub safe_mode_entries: u64,
    /// Safe-mode releases (breach cleared, normal planning resumed).
    pub safe_mode_exits: u64,
    /// Safe-mode escalations (breach persisted at minimum knobs, all
    /// applications parked).
    pub safe_mode_escalations: u64,
    /// Calibrations skipped because the application departed mid-probe.
    pub skipped_calibrations: u64,
}

/// Counters for the non-intrusive power-estimation layer (all zero
/// when the mediator runs on oracle per-app power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EstimationStats {
    /// Breakdowns estimated (one per poll while estimation is on).
    pub estimates: u64,
    /// Estimates served from a held (dropout-bridged) meter sample.
    pub held_samples: u64,
    /// Estimates served blind (dropout outlasted the hold window; the
    /// prior-sum pseudo-meter took over).
    pub blind_samples: u64,
    /// Polls whose meter-vs-model residual exceeded the confidence
    /// band (evidence toward the degradation ladder).
    pub residual_spikes: u64,
    /// Conservative fallback-cap engagements (planning cap shaved by
    /// the confidence band; each fires an E6 `SensorFault`).
    pub fallback_engagements: u64,
    /// Fallback releases (residual stayed clean long enough).
    pub fallback_releases: u64,
    /// Ladder escalations to safe mode (shaving did not stop the
    /// spikes).
    pub escalations: u64,
    /// Per-app polls whose claimed heartbeat ratio hit the configured
    /// clamp bound. A truthful app sits well inside the band, so every
    /// bound hit is a sample the estimator could not take at face
    /// value — the integrity layer seeds its trust scores from these.
    pub clamp_bound_polls: u64,
}

/// Counters for injected adversarial-application behaviour (the
/// strategic misreporting channels in `powermed-sim`'s adversary
/// module). All zero when no adversary is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdversaryStats {
    /// Heartbeat reports scaled away from the true rate (inflation or
    /// deflation, including jittered reports).
    pub heartbeats_misreported: u64,
    /// Calibration probes answered with sandbagged (deliberately
    /// pessimistic) throughput.
    pub probes_sandbagged: u64,
    /// Steps on which an acked knob setting was silently overridden
    /// with a hotter operating point.
    pub knobs_defied: u64,
    /// Heartbeat reports modulated by the phase-spoofing square wave.
    pub phases_spoofed: u64,
}

impl AdversaryStats {
    /// Total number of misbehaviour events across every channel.
    pub fn total_events(&self) -> u64 {
        self.heartbeats_misreported
            + self.probes_sandbagged
            + self.knobs_defied
            + self.phases_spoofed
    }
}

/// Counters for the mediator's integrity defense (trust scoring,
/// quarantine ladder and watt-debt clawback). All zero when the
/// defense is off or every app behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrustStats {
    /// Polls on which some app's claim failed a physics-plausibility
    /// cross-check (claimed rate vs. the calibrated surface, residual
    /// sign attribution, or a clamp-bound heartbeat).
    pub implausible_polls: u64,
    /// Trust-score downgrades (each journals a `TrustDowngrade`).
    pub downgrades: u64,
    /// Quarantine entries (each fires an E7 `IntegrityFault` and
    /// clamps the app to its fair share).
    pub quarantines: u64,
    /// Probationary re-admissions (clean window elapsed, fresh probes
    /// scheduled).
    pub probations: u64,
    /// Full re-admissions (probation completed cleanly).
    pub readmissions: u64,
    /// Polls on which watt debt was clawed back from a quarantined
    /// app's clamp.
    pub clawback_polls: u64,
    /// Containment entries: a quarantined app kept overdrawing with
    /// the clamp in force (knob non-compliance confirmed), so it was
    /// suspended until its watt debt was repaid in idle time.
    pub containments: u64,
}

impl TrustStats {
    /// Total defense responses (downgrades and ladder transitions;
    /// plausibility flags are evidence, not responses).
    pub fn response_events(&self) -> u64 {
        self.downgrades + self.quarantines + self.probations + self.readmissions
    }
}

/// Counters for the cluster control plane: faults injected into the
/// manager ↔ agent message layer plus the resilient tier's responses.
///
/// The injected half is filled by the control plane's fault source; the
/// response half by the resilient manager (failovers, dead declarations,
/// reapportionments, checkpoints) and the per-server agents (heartbeat
/// misses, fallback engagements). A naive manager leaves the response
/// half at zero, and a fault-free run leaves the injected half at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClusterControlStats {
    /// Cap-assignment / heartbeat downlinks dropped in flight.
    pub downlinks_dropped: u64,
    /// Downlinks delivered late (delayed by at least one step).
    pub downlinks_delayed: u64,
    /// Telemetry uplinks dropped in flight.
    pub uplinks_dropped: u64,
    /// Telemetry uplinks delivered stale (delayed by at least one step).
    pub uplinks_delayed: u64,
    /// Messages lost because the destination node was down or the
    /// manager was dead when they would have been handled.
    pub messages_lost_endpoint_down: u64,
    /// Whole-node crash events (apps restart, ESD state resets).
    pub node_crashes: u64,
    /// Node restart events (a crashed node rejoined the fleet).
    pub node_restarts: u64,
    /// Manager heartbeat intervals that elapsed with no downlink at all
    /// (counted by the agents).
    pub heartbeat_misses: u64,
    /// Agents that engaged the conservative local fallback cap.
    pub fallback_engagements: u64,
    /// Manager failovers (standby took over from the checkpoint).
    pub manager_failovers: u64,
    /// Checkpoints of the manager's apportionment state.
    pub checkpoints: u64,
    /// Nodes the manager declared dead on missed telemetry.
    pub dead_declarations: u64,
    /// Dead-declared nodes that rejoined (their share is returned).
    pub rejoins: u64,
    /// Cluster cap reapportionments (trace changes excluded: only the
    /// membership- or failover-driven recomputations count here).
    pub reapportionments: u64,
    /// Facility-protection trips: sustained budget overdraw slammed the
    /// fleet to the floor cap for a cooldown. A *consequence* of
    /// violations rather than an injected fault or a control-plane
    /// response, so excluded from both event sums.
    pub breaker_trips: u64,
}

impl ClusterControlStats {
    /// Total control-plane fault events injected (drops, delays, node
    /// churn, endpoint losses — the environment, not the responses).
    pub fn injected_events(&self) -> u64 {
        self.downlinks_dropped
            + self.downlinks_delayed
            + self.uplinks_dropped
            + self.uplinks_delayed
            + self.messages_lost_endpoint_down
            + self.node_crashes
            + self.node_restarts
    }

    /// Total resilient-tier responses (zero for a naive manager).
    pub fn response_events(&self) -> u64 {
        self.heartbeat_misses
            + self.fallback_engagements
            + self.manager_failovers
            + self.dead_declarations
            + self.rejoins
            + self.reapportionments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_discrete_events() {
        let s = FaultStats {
            knob_rejections: 1,
            knob_stale: 2,
            knob_partial: 3,
            meter_stuck: 4,
            meter_dropouts: 5,
            meter_noisy: 100,
            meter_biased: 200,
            esd_commands_ignored: 6,
            app_crashes: 7,
            app_restarts: 8,
        };
        assert_eq!(
            s.total_events(),
            36,
            "noise and shared bias are not discrete events"
        );
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(FaultStats::default().total_events(), 0);
        let h = HardeningStats::default();
        assert_eq!(h.retries, 0);
        assert_eq!(h.safe_mode_entries, 0);
        let e = EstimationStats::default();
        assert_eq!(e.estimates, 0);
        assert_eq!(e.fallback_engagements, 0);
        assert_eq!(e.clamp_bound_polls, 0);
        assert_eq!(AdversaryStats::default().total_events(), 0);
        assert_eq!(TrustStats::default().response_events(), 0);
        let c = ClusterControlStats::default();
        assert_eq!(c.injected_events(), 0);
        assert_eq!(c.response_events(), 0);
    }

    #[test]
    fn cluster_totals_split_injection_from_response() {
        let c = ClusterControlStats {
            downlinks_dropped: 1,
            downlinks_delayed: 2,
            uplinks_dropped: 3,
            uplinks_delayed: 4,
            messages_lost_endpoint_down: 5,
            node_crashes: 6,
            node_restarts: 7,
            heartbeat_misses: 10,
            fallback_engagements: 20,
            manager_failovers: 30,
            checkpoints: 1000,
            dead_declarations: 40,
            rejoins: 50,
            reapportionments: 60,
            breaker_trips: 9,
        };
        assert_eq!(c.injected_events(), 28);
        assert_eq!(
            c.response_events(),
            210,
            "checkpoints are routine and breaker trips are consequences, not responses"
        );
    }
}
