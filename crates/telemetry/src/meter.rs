//! Server power metering and cap-compliance accounting.

use powermed_units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// How well a run respected its power cap, as reported by the meter.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CapCompliance {
    /// Time spent above the cap.
    pub violation_time: Seconds,
    /// Total observed time.
    pub total_time: Seconds,
    /// Worst overshoot observed.
    pub worst_overshoot: Watts,
    /// Energy drawn above the cap (the "overdraft" the PDU would see).
    pub overshoot_energy: Joules,
}

impl CapCompliance {
    /// Fraction of time spent above the cap (0 when nothing observed).
    pub fn violation_fraction(&self) -> f64 {
        if self.total_time.value() <= 0.0 {
            0.0
        } else {
            self.violation_time / self.total_time
        }
    }
}

/// Accumulates power samples over a run: average/peak draw, total energy,
/// and compliance against a (possibly time-varying) cap.
///
/// ```
/// use powermed_telemetry::meter::PowerMeter;
/// use powermed_units::{Seconds, Watts};
///
/// let mut meter = PowerMeter::new();
/// meter.sample(Watts::new(90.0), Some(Watts::new(100.0)), Seconds::new(1.0));
/// meter.sample(Watts::new(110.0), Some(Watts::new(100.0)), Seconds::new(1.0));
/// assert_eq!(meter.average(), Some(Watts::new(100.0)));
/// assert_eq!(meter.compliance().violation_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerMeter {
    energy: Joules,
    time: Seconds,
    peak: Watts,
    compliance: CapCompliance,
    samples: usize,
}

impl PowerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `power` sustained for `dt`, checked against `cap` if one
    /// was in force. Non-positive `dt` is ignored.
    pub fn sample(&mut self, power: Watts, cap: Option<Watts>, dt: Seconds) {
        if dt.value() <= 0.0 {
            return;
        }
        self.energy += power * dt;
        self.time += dt;
        self.peak = self.peak.max(power);
        self.samples += 1;
        self.compliance.total_time += dt;
        if let Some(cap) = cap {
            if power.violates_cap(cap) {
                let over = power - cap;
                self.compliance.violation_time += dt;
                self.compliance.worst_overshoot = self.compliance.worst_overshoot.max(over);
                self.compliance.overshoot_energy += over * dt;
            }
        }
    }

    /// Total energy observed.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total observation time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Number of samples taken.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Time-weighted average power, or `None` before any sample.
    pub fn average(&self) -> Option<Watts> {
        if self.time.value() <= 0.0 {
            None
        } else {
            Some(self.energy / self.time)
        }
    }

    /// Highest instantaneous draw observed.
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Cap-compliance summary.
    pub fn compliance(&self) -> CapCompliance {
        self.compliance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_time_weighted() {
        let mut m = PowerMeter::new();
        m.sample(Watts::new(100.0), None, Seconds::new(3.0));
        m.sample(Watts::new(60.0), None, Seconds::new(1.0));
        assert_eq!(m.average(), Some(Watts::new(90.0)));
        assert_eq!(m.peak(), Watts::new(100.0));
        assert_eq!(m.energy(), Joules::new(360.0));
        assert_eq!(m.samples(), 2);
    }

    #[test]
    fn empty_meter_has_no_average() {
        let m = PowerMeter::new();
        assert_eq!(m.average(), None);
        assert_eq!(m.compliance().violation_fraction(), 0.0);
    }

    #[test]
    fn compliance_tracks_violations() {
        let mut m = PowerMeter::new();
        let cap = Some(Watts::new(80.0));
        m.sample(Watts::new(70.0), cap, Seconds::new(2.0));
        m.sample(Watts::new(95.0), cap, Seconds::new(1.0));
        m.sample(Watts::new(85.0), cap, Seconds::new(1.0));
        let c = m.compliance();
        assert_eq!(c.violation_time, Seconds::new(2.0));
        assert_eq!(c.worst_overshoot, Watts::new(15.0));
        assert_eq!(c.overshoot_energy, Joules::new(20.0));
        assert_eq!(c.violation_fraction(), 0.5);
    }

    #[test]
    fn zero_dt_ignored() {
        let mut m = PowerMeter::new();
        m.sample(Watts::new(100.0), Some(Watts::new(1.0)), Seconds::ZERO);
        assert_eq!(m.samples(), 0);
        assert_eq!(m.average(), None);
    }

    #[test]
    fn uncapped_samples_never_violate() {
        let mut m = PowerMeter::new();
        m.sample(Watts::new(1000.0), None, Seconds::new(1.0));
        assert_eq!(m.compliance().violation_time, Seconds::ZERO);
    }

    #[test]
    fn boundary_sample_at_cap_plus_tolerance_is_compliant() {
        use powermed_units::CAP_TOLERANCE;
        let cap = Watts::new(80.0);
        let mut m = PowerMeter::new();
        // Exactly cap + tolerance: the shared constant makes the meter
        // agree with the simulator's per-step flag — not a violation.
        m.sample(cap + CAP_TOLERANCE, Some(cap), Seconds::new(1.0));
        assert_eq!(m.compliance().violation_time, Seconds::ZERO);
        // One ulp-ish further is a violation.
        m.sample(Watts::new(80.0 + 2e-9), Some(cap), Seconds::new(1.0));
        assert_eq!(m.compliance().violation_time, Seconds::new(1.0));
    }
}
