//! A hosted application's runtime state: progress, heartbeats, phase
//! clock and completion.

use powermed_server::server::AppDemand;
use powermed_server::{KnobSetting, ServerSpec};
use powermed_telemetry::heartbeat::HeartbeatMonitor;
use powermed_units::Seconds;
use powermed_workloads::profile::{AppProfile, OperatingPoint};

/// Default heartbeat aggregation window.
const HEARTBEAT_WINDOW: Seconds = Seconds::new(2.0);

/// Runtime state of one application hosted on the simulated server.
#[derive(Debug, Clone)]
pub struct RunningApp {
    profile: AppProfile,
    arrived_at: Seconds,
    /// Wall-clock the app has actually been *running* (phase clock).
    active_time: Seconds,
    ops_done: f64,
    heartbeats: HeartbeatMonitor,
    completed: bool,
}

impl RunningApp {
    /// Wraps a profile arriving at `arrived_at`.
    pub fn new(profile: AppProfile, arrived_at: Seconds) -> Self {
        Self {
            profile,
            arrived_at,
            active_time: Seconds::ZERO,
            ops_done: 0.0,
            heartbeats: HeartbeatMonitor::new(HEARTBEAT_WINDOW),
            completed: false,
        }
    }

    /// The application's profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// When the application arrived on the server.
    pub fn arrived_at(&self) -> Seconds {
        self.arrived_at
    }

    /// Total work completed so far.
    pub fn ops_done(&self) -> f64 {
        self.ops_done
    }

    /// Whether the application has finished its total work.
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Time the application has spent actually running (excludes
    /// suspension), which drives its phase behaviour.
    pub fn active_time(&self) -> Seconds {
        self.active_time
    }

    /// The heartbeat rate over the trailing window ending at `now`, ops
    /// per second.
    pub fn heartbeat_rate(&mut self, now: Seconds) -> Option<f64> {
        self.heartbeats.rate(now)
    }

    /// The operating point the app would run at for `knob` right now
    /// (respecting the current phase), without advancing it.
    pub fn operating_point(&self, spec: &ServerSpec, knob: KnobSetting) -> OperatingPoint {
        self.profile.evaluate_at(spec, knob, self.active_time)
    }

    /// Advances the app by `dt` of *running* time at `knob`, crediting
    /// progress and heartbeats. Returns the demand it placed on the
    /// hardware during the step.
    ///
    /// A completed app contributes nothing (its process has exited; only
    /// the Accountant's E3 handling removes it from the server).
    pub fn step(
        &mut self,
        spec: &ServerSpec,
        knob: KnobSetting,
        now: Seconds,
        dt: Seconds,
    ) -> AppDemand {
        if self.completed {
            return AppDemand {
                core_busy: powermed_units::Ratio::ZERO,
                mem_bandwidth: powermed_units::BytesPerSec::ZERO,
            };
        }
        let op = self.operating_point(spec, knob);
        let mut ops = op.throughput * dt.value();
        if let Some(total) = self.profile.total_ops() {
            let remaining = (total - self.ops_done).max(0.0);
            if ops >= remaining {
                ops = remaining;
                self.completed = true;
            }
        }
        self.ops_done += ops;
        self.active_time += dt;
        self.heartbeats.record(now, ops);
        op.demand
    }

    /// Advances the app by `dt` of running time at an already-evaluated
    /// operating point, crediting only `utilization` of its full-rate
    /// output — the request-driven path, where the traffic source
    /// decides how much of the roofline capacity was actually consumed.
    /// Heartbeats track *served* throughput and the hardware demand
    /// scales the same way: an app waiting for requests stalls its
    /// cores and leaves its DIMM idle.
    pub fn step_served(
        &mut self,
        op: &OperatingPoint,
        utilization: f64,
        now: Seconds,
        dt: Seconds,
    ) -> AppDemand {
        if self.completed {
            return AppDemand {
                core_busy: powermed_units::Ratio::ZERO,
                mem_bandwidth: powermed_units::BytesPerSec::ZERO,
            };
        }
        let utilization = utilization.clamp(0.0, 1.0);
        let mut ops = op.throughput * dt.value() * utilization;
        if let Some(total) = self.profile.total_ops() {
            let remaining = (total - self.ops_done).max(0.0);
            if ops >= remaining {
                ops = remaining;
                self.completed = true;
            }
        }
        self.ops_done += ops;
        self.active_time += dt;
        self.heartbeats.record(now, ops);
        AppDemand {
            core_busy: op.demand.core_busy * utilization,
            mem_bandwidth: op.demand.mem_bandwidth * utilization,
        }
    }

    /// Registers a suspended step: time passes, no progress, no demand.
    pub fn step_suspended(&mut self, now: Seconds) {
        // Record an explicit zero-beat so rate windows decay naturally.
        self.heartbeats.record(now, 0.0);
    }

    /// Fraction of total work completed, or `None` for endless services.
    pub fn progress_fraction(&self) -> Option<f64> {
        self.profile
            .total_ops()
            .map(|t| (self.ops_done / t).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::ServerSpec;
    use powermed_workloads::catalog;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn progress_accumulates_at_throughput() {
        let spec = spec();
        let mut app = RunningApp::new(catalog::kmeans(), Seconds::ZERO);
        let knob = KnobSetting::max_for(&spec);
        let rate = app.operating_point(&spec, knob).throughput;
        for i in 0..10 {
            app.step(&spec, knob, Seconds::new(i as f64 * 0.1), Seconds::new(0.1));
        }
        assert!((app.ops_done() - rate).abs() < 1e-6, "1 s of work at rate");
        assert!((app.active_time() - Seconds::new(1.0)).abs() < Seconds::new(1e-9));
    }

    #[test]
    fn heartbeats_report_running_rate() {
        let spec = spec();
        let mut app = RunningApp::new(catalog::pagerank(), Seconds::ZERO);
        let knob = KnobSetting::max_for(&spec);
        let expect = app.operating_point(&spec, knob).throughput;
        for i in 1..=20 {
            app.step(&spec, knob, Seconds::new(i as f64 * 0.1), Seconds::new(0.1));
        }
        let rate = app.heartbeat_rate(Seconds::new(2.0)).unwrap();
        assert!(
            (rate - expect).abs() / expect < 0.1,
            "measured {rate} vs model {expect}"
        );
    }

    #[test]
    fn finite_jobs_complete_exactly() {
        let spec = spec();
        let profile = catalog::kmeans().with_total_ops(100.0);
        let mut app = RunningApp::new(profile, Seconds::ZERO);
        let knob = KnobSetting::max_for(&spec);
        let mut now = Seconds::ZERO;
        while !app.completed() {
            now += Seconds::new(0.1);
            app.step(&spec, knob, now, Seconds::new(0.1));
            assert!(app.ops_done() <= 100.0 + 1e-9);
        }
        assert_eq!(app.ops_done(), 100.0);
        assert_eq!(app.progress_fraction(), Some(1.0));
        // Further steps contribute nothing.
        let demand = app.step(&spec, knob, now + Seconds::new(0.1), Seconds::new(0.1));
        assert_eq!(demand.mem_bandwidth.value(), 0.0);
        assert_eq!(app.ops_done(), 100.0);
    }

    #[test]
    fn suspension_freezes_progress_and_phase_clock() {
        let spec = spec();
        let mut app = RunningApp::new(catalog::bfs(), Seconds::ZERO);
        let knob = KnobSetting::max_for(&spec);
        app.step(&spec, knob, Seconds::new(0.1), Seconds::new(0.1));
        let ops = app.ops_done();
        app.step_suspended(Seconds::new(0.2));
        app.step_suspended(Seconds::new(0.3));
        assert_eq!(app.ops_done(), ops);
        assert_eq!(app.active_time(), Seconds::new(0.1));
    }

    #[test]
    fn endless_services_have_no_progress_fraction() {
        let app = RunningApp::new(catalog::stream(), Seconds::ZERO);
        assert_eq!(app.progress_fraction(), None);
        assert!(!app.completed());
    }
}
