//! The simulation clock.

use powermed_units::Seconds;
use serde::{Deserialize, Serialize};

/// A monotonically advancing simulation clock.
///
/// ```
/// use powermed_sim::clock::SimClock;
/// use powermed_units::Seconds;
///
/// let mut clock = SimClock::new();
/// clock.advance(Seconds::from_millis(100.0));
/// assert_eq!(clock.now(), Seconds::new(0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: Seconds,
    steps: u64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances the clock by `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite — a zero or backwards
    /// step is always a driver bug.
    pub fn advance(&mut self, dt: Seconds) {
        assert!(
            dt.value() > 0.0 && dt.is_finite(),
            "clock steps must be positive and finite, got {dt}"
        );
        self.now += dt;
        self.steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_counts() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Seconds::ZERO);
        c.advance(Seconds::new(0.1));
        c.advance(Seconds::new(0.4));
        assert_eq!(c.now(), Seconds::new(0.5));
        assert_eq!(c.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_step_panics() {
        SimClock::new().advance(Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn negative_step_panics() {
        SimClock::new().advance(Seconds::new(-1.0));
    }
}
