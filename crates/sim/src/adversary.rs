//! Seeded, deterministic adversarial-application behaviour.
//!
//! The fault injector in [`crate::faults`] models a substrate that
//! *breaks*; this module models applications that *lie*. Every signal
//! the mediator's estimation layer leans on since the disaggregation
//! work — heartbeats, calibration probes, knob compliance — is
//! ultimately produced by the application itself, so a strategic app
//! can misreport its way into a bigger slice of the shared budget at
//! honest apps' expense. Four channels cover the attack surface:
//!
//! * **Heartbeat misreporting** — the reported heartbeat rate is a
//!   constant multiple of the truth (inflation claims starvation to
//!   attract watts; deflation hides consumption), optionally with
//!   seeded multiplicative jitter so the lie is not a clean constant;
//! * **Calibration sandbagging** — during probes the app runs
//!   deliberately inefficiently at every sub-maximal knob, steepening
//!   the learned utility curve so the allocator believes only a
//!   near-maximal allocation yields useful throughput;
//! * **Knob non-compliance** — the app acks every knob write but keeps
//!   running its cores at top frequency and an uncapped DRAM limit.
//!   Core gating is enforced by the hypervisor and cannot be escaped,
//!   which is why only the `f` and `m` knobs are defied;
//! * **Phase spoofing** — the reported heartbeat is modulated by a
//!   square wave, claiming phase swings the power draw never shows.
//!
//! The channels perturb only what the *runtime is told*: ground truth
//! (true power, true progress, the meter) is computed exactly as
//! before, so experiments can score the attacker's real gain.
//!
//! # Determinism contract
//!
//! Same contract as [`crate::faults`]: the one randomized channel
//! (heartbeat jitter) draws from its own `splitmix64` stream derived
//! from the scenario seed, draws happen only for adversarial apps at
//! points fixed by the single-threaded simulation order, and inert
//! channels consume no randomness. A [`ServerSim`] built without an
//! adversary never consults this module at all, so the layer is
//! zero-cost — and bit-identical — when off.
//!
//! [`ServerSim`]: crate::engine::ServerSim

use std::cell::Cell;

use powermed_server::{KnobSetting, ServerSpec};
use powermed_telemetry::faults::AdversaryStats;
use powermed_units::Seconds;
use rand::rngs::StdRng;
use rand::Rng;

use crate::faults::channel_stream;

/// Scenario description: which applications misbehave and how.
///
/// The default configuration misbehaves on no channel; constructors
/// for each single-channel attack keep experiment grids terse.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryConfig {
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Names of the adversarial applications (honest apps are never
    /// touched).
    pub apps: Vec<String>,
    /// Multiplier applied to every reported heartbeat rate (1.0 = the
    /// channel is off; > 1 inflates, < 1 deflates).
    pub heartbeat_factor: f64,
    /// Multiplicative Gaussian jitter sigma on misreported heartbeats
    /// (0 = deterministic lie). Only drawn when the misreport channel
    /// is active, so enabling jitter never perturbs other channels.
    pub heartbeat_jitter: f64,
    /// Multiplier on probe-time throughput at sub-maximal knobs
    /// (1.0 = the channel is off; < 1 sandbags the learned curve).
    pub sandbag_factor: f64,
    /// When set, acked knob writes are silently overridden at step
    /// time with top frequency and an uncapped DRAM limit.
    pub knob_defiance: bool,
    /// Half-period of the phase-spoofing square wave (0 = off).
    pub spoof_period: Seconds,
    /// Depth of the spoof modulation: reported rates swing between
    /// `(1 - depth)` and `(1 + depth)` times the truth (0 = off).
    pub spoof_depth: f64,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        Self {
            seed: 0xAD5E,
            apps: Vec::new(),
            heartbeat_factor: 1.0,
            heartbeat_jitter: 0.0,
            sandbag_factor: 1.0,
            knob_defiance: false,
            spoof_period: Seconds::ZERO,
            spoof_depth: 0.0,
        }
    }
}

impl AdversaryConfig {
    /// A scenario with every channel off (the all-honest baseline).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    fn targeting(seed: u64, apps: &[&str]) -> Self {
        Self {
            seed,
            apps: apps.iter().map(|a| (*a).to_string()).collect(),
            ..Self::default()
        }
    }

    /// Heartbeat misreporting: reported rates are `factor` times the
    /// truth (with a little seeded jitter so the lie is not constant).
    pub fn heartbeat_misreport(seed: u64, apps: &[&str], factor: f64) -> Self {
        Self {
            heartbeat_factor: factor,
            heartbeat_jitter: 0.02,
            ..Self::targeting(seed, apps)
        }
    }

    /// Calibration sandbagging: probes at sub-maximal knobs report
    /// `factor` times the true throughput.
    pub fn sandbagging(seed: u64, apps: &[&str], factor: f64) -> Self {
        Self {
            sandbag_factor: factor,
            ..Self::targeting(seed, apps)
        }
    }

    /// Knob non-compliance: every acked setting runs hot.
    pub fn noncompliance(seed: u64, apps: &[&str]) -> Self {
        Self {
            knob_defiance: true,
            ..Self::targeting(seed, apps)
        }
    }

    /// Phase spoofing: reported rates swing `±depth` with half-period
    /// `period` while the true draw stays put.
    pub fn phase_spoofing(seed: u64, apps: &[&str], period: Seconds, depth: f64) -> Self {
        Self {
            spoof_period: period,
            spoof_depth: depth,
            ..Self::targeting(seed, apps)
        }
    }

    /// Whether `app` is one of the configured adversaries.
    pub fn is_adversary(&self, app: &str) -> bool {
        self.apps.iter().any(|a| a == app)
    }

    /// Whether the heartbeat-misreport channel is active.
    fn misreport_active(&self) -> bool {
        self.heartbeat_factor != 1.0 || self.heartbeat_jitter > 0.0
    }

    /// Whether the phase-spoofing channel is active.
    fn spoof_active(&self) -> bool {
        self.spoof_period > Seconds::ZERO && self.spoof_depth != 0.0
    }
}

/// The deterministic adversary source wired into
/// [`crate::engine::ServerSim`], mirroring [`crate::faults::FaultInjector`].
#[derive(Debug)]
pub struct AdversaryInjector {
    config: AdversaryConfig,
    hb_rng: StdRng,
    now: Seconds,
    /// Counters live in a `Cell` because the sandbag hook sits on the
    /// engine's `&self` probe path.
    stats: Cell<AdversaryStats>,
}

impl AdversaryInjector {
    /// Creates an injector for `config`. The jitter stream gets its
    /// own channel tag so it never collides with the fault channels
    /// (0xA001/0xB002/0xC003) even under a shared scenario seed.
    pub fn new(config: AdversaryConfig) -> Self {
        Self {
            hb_rng: channel_stream(config.seed, 0xD004),
            config,
            now: Seconds::ZERO,
            stats: Cell::new(AdversaryStats::default()),
        }
    }

    /// The scenario being injected.
    pub fn config(&self) -> &AdversaryConfig {
        &self.config
    }

    /// Misbehaviour counters so far.
    pub fn stats(&self) -> AdversaryStats {
        self.stats.get()
    }

    fn bump(&self, f: impl FnOnce(&mut AdversaryStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Synchronizes with the engine clock; called once at the top of
    /// every [`crate::engine::ServerSim::step`].
    pub(crate) fn begin_step(&mut self, now: Seconds) {
        self.now = now;
    }

    /// Filters a true heartbeat rate into what `app` reports. Honest
    /// apps (and `None` windows) pass through untouched.
    pub(crate) fn report_heartbeat(&mut self, app: &str, truth: Option<f64>) -> Option<f64> {
        let rate = truth?;
        if !self.config.is_adversary(app) {
            return Some(rate);
        }
        let mut factor = 1.0;
        if self.config.misreport_active() {
            factor *= self.config.heartbeat_factor;
            if self.config.heartbeat_jitter > 0.0 {
                let g = gaussian(&mut self.hb_rng);
                factor *= (1.0 + self.config.heartbeat_jitter * g).max(0.0);
            }
            self.bump(|s| s.heartbeats_misreported += 1);
        }
        if self.config.spoof_active() {
            let phase = (self.now.value() / self.config.spoof_period.value()).floor() as i64;
            factor *= if phase % 2 == 0 {
                1.0 + self.config.spoof_depth
            } else {
                (1.0 - self.config.spoof_depth).max(0.0)
            };
            self.bump(|s| s.phases_spoofed += 1);
        }
        if factor == 1.0 {
            return Some(rate);
        }
        Some((rate * factor).max(0.0))
    }

    /// Filters a probe's true throughput into what `app` demonstrates
    /// during calibration. Sandbagging spares the maximal knob so the
    /// learned curve stays anchored at the truthful top — that is what
    /// makes the lie profitable rather than merely self-throttling.
    pub(crate) fn probe_throughput(&self, app: &str, at_max: bool, truth: f64) -> f64 {
        if self.config.sandbag_factor == 1.0 || at_max || !self.config.is_adversary(app) {
            return truth;
        }
        self.bump(|s| s.probes_sandbagged += 1);
        (truth * self.config.sandbag_factor).max(0.0)
    }

    /// The knob `app` actually runs at when `commanded` was acked.
    /// Defiant apps keep the commanded core count (gating is enforced
    /// below them) but run top frequency and an uncapped DRAM limit.
    pub(crate) fn effective_knob(
        &self,
        app: &str,
        spec: &ServerSpec,
        commanded: KnobSetting,
    ) -> KnobSetting {
        if !self.config.knob_defiance || !self.config.is_adversary(app) {
            return commanded;
        }
        let defied = commanded
            .with_dvfs(spec.ladder().top_state())
            .with_dram_limit(spec.dram_limit_max());
        if defied != commanded {
            self.bump(|s| s.knobs_defied += 1);
        }
        defied
    }
}

/// A standard-normal sample by Box–Muller over the jitter stream (the
/// vendored rand shim has no distributions module).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0); // (0, 1]
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn inert_config_passes_everything_through() {
        let spec = spec();
        let mut inj = AdversaryInjector::new(AdversaryConfig::none(1));
        inj.begin_step(Seconds::new(1.0));
        assert_eq!(inj.report_heartbeat("kmeans", Some(12.5)), Some(12.5));
        assert_eq!(inj.report_heartbeat("kmeans", None), None);
        assert_eq!(inj.probe_throughput("kmeans", false, 9.0), 9.0);
        let knob = KnobSetting::min_for(&spec);
        assert_eq!(inj.effective_knob("kmeans", &spec, knob), knob);
        assert_eq!(inj.stats().total_events(), 0);
    }

    #[test]
    fn honest_apps_are_untouched_by_an_active_adversary() {
        let spec = spec();
        let cfg = AdversaryConfig {
            knob_defiance: true,
            sandbag_factor: 0.4,
            heartbeat_factor: 2.0,
            ..AdversaryConfig::targeting(7, &["stream"])
        };
        let mut inj = AdversaryInjector::new(cfg);
        inj.begin_step(Seconds::new(1.0));
        assert_eq!(inj.report_heartbeat("kmeans", Some(3.0)), Some(3.0));
        assert_eq!(inj.probe_throughput("kmeans", false, 5.0), 5.0);
        let knob = KnobSetting::min_for(&spec);
        assert_eq!(inj.effective_knob("kmeans", &spec, knob), knob);
        assert_eq!(inj.stats().total_events(), 0);
    }

    #[test]
    fn misreport_scales_the_claim_and_jitter_is_seeded() {
        let drive = |seed: u64| -> Vec<Option<f64>> {
            let mut inj =
                AdversaryInjector::new(AdversaryConfig::heartbeat_misreport(seed, &["s"], 2.0));
            (0..50)
                .map(|i| {
                    inj.begin_step(Seconds::new(i as f64 * 0.1));
                    inj.report_heartbeat("s", Some(10.0))
                })
                .collect()
        };
        let a = drive(7);
        assert_eq!(a, drive(7), "same seed: bit-identical claims");
        assert_ne!(a, drive(8), "different seed: diverging jitter");
        let mean = a.iter().map(|v| v.unwrap()).sum::<f64>() / a.len() as f64;
        assert!((mean - 20.0).abs() < 1.0, "claims center on 2x: {mean}");
    }

    #[test]
    fn deflation_without_jitter_is_exact_and_draws_no_rng() {
        let cfg = AdversaryConfig {
            heartbeat_factor: 0.5,
            heartbeat_jitter: 0.0,
            ..AdversaryConfig::targeting(3, &["s"])
        };
        let mut inj = AdversaryInjector::new(cfg);
        inj.begin_step(Seconds::ZERO);
        assert_eq!(inj.report_heartbeat("s", Some(8.0)), Some(4.0));
        assert_eq!(inj.stats().heartbeats_misreported, 1);
    }

    #[test]
    fn sandbagging_spares_the_maximal_knob() {
        let inj = AdversaryInjector::new(AdversaryConfig::sandbagging(5, &["s"], 0.25));
        assert_eq!(inj.probe_throughput("s", false, 8.0), 2.0);
        assert_eq!(inj.probe_throughput("s", true, 8.0), 8.0, "top is truthful");
        assert_eq!(inj.stats().probes_sandbagged, 1);
    }

    #[test]
    fn defiance_keeps_cores_but_runs_hot() {
        let spec = spec();
        let inj = AdversaryInjector::new(AdversaryConfig::noncompliance(5, &["s"]));
        let commanded = KnobSetting::min_for(&spec).with_cores(3);
        let effective = inj.effective_knob("s", &spec, commanded);
        assert_eq!(effective.cores(), 3, "core gating cannot be escaped");
        assert_eq!(effective.dvfs(), spec.ladder().top_state());
        assert_eq!(effective.dram_limit(), spec.dram_limit_max());
        assert_eq!(inj.stats().knobs_defied, 1);
        // A commanded top setting is already "defied": no event.
        let top = KnobSetting::max_for(&spec);
        assert_eq!(inj.effective_knob("s", &spec, top), top);
        assert_eq!(inj.stats().knobs_defied, 1);
    }

    #[test]
    fn spoof_square_wave_is_time_deterministic() {
        let cfg = AdversaryConfig::phase_spoofing(9, &["s"], Seconds::new(1.0), 0.4);
        let mut inj = AdversaryInjector::new(cfg);
        inj.begin_step(Seconds::new(0.5));
        assert_eq!(inj.report_heartbeat("s", Some(10.0)), Some(14.0));
        inj.begin_step(Seconds::new(1.5));
        assert_eq!(inj.report_heartbeat("s", Some(10.0)), Some(6.0));
        inj.begin_step(Seconds::new(2.5));
        assert_eq!(inj.report_heartbeat("s", Some(10.0)), Some(14.0));
        assert_eq!(inj.stats().phases_spoofed, 3);
        assert_eq!(inj.stats().heartbeats_misreported, 0);
    }

    #[test]
    fn channels_compose_multiplicatively() {
        let cfg = AdversaryConfig {
            heartbeat_factor: 2.0,
            heartbeat_jitter: 0.0,
            spoof_period: Seconds::new(1.0),
            spoof_depth: 0.5,
            ..AdversaryConfig::targeting(1, &["s"])
        };
        let mut inj = AdversaryInjector::new(cfg);
        inj.begin_step(Seconds::new(0.1));
        assert_eq!(inj.report_heartbeat("s", Some(10.0)), Some(30.0));
    }
}
