//! The fixed-timestep server simulation.

use std::collections::BTreeMap;

use powermed_esd::{DegradedEsd, EnergyStorage};
use powermed_server::server::{AppDemand, AppRunState, PowerBreakdown};
use powermed_server::{KnobSetting, Server, ServerError, ServerSpec};
use powermed_telemetry::faults::{AdversaryStats, FaultStats};
use powermed_telemetry::journal::{Obs, ObsEvent};
use powermed_telemetry::meter::PowerMeter;
use powermed_telemetry::metrics::prom_label;
use powermed_telemetry::recorder::TraceRecorder;
use powermed_traffic::source::{TrafficConfig, TrafficEvent, TrafficSource};
use powermed_units::{Seconds, Watts};
use powermed_workloads::profile::AppProfile;

use crate::adversary::{AdversaryConfig, AdversaryInjector};
use crate::app::RunningApp;
use crate::clock::SimClock;
use crate::faults::{FaultConfig, FaultInjector, FaultRecord, KnobWriteOutcome};

/// What the policy asked the ESD to do until further notice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EsdCommand {
    /// Neither charge nor discharge.
    #[default]
    Idle,
    /// Charge at up to the given bus power (clamped by headroom under
    /// the cap and by the device).
    Charge(Watts),
    /// Discharge at up to the given bus power (clamped by the device).
    Discharge(Watts),
    /// Discharge exactly as much as needed to bring net draw down to the
    /// cap (no-op when already under the cap or no cap is set).
    DischargeToCap,
}

/// What happened during one simulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Simulation time at the *end* of the step.
    pub now: Seconds,
    /// Power drawn by the server itself (idle + uncore + apps).
    pub gross_power: Watts,
    /// Net draw seen by the provisioned feed: gross + ESD charge − ESD
    /// discharge. This is what the cap constrains (Eq. 2).
    pub net_power: Watts,
    /// Power the ESD absorbed this step.
    pub esd_charge: Watts,
    /// Power the ESD delivered this step.
    pub esd_discharge: Watts,
    /// Whether net power exceeded the cap this step.
    pub cap_violated: bool,
    /// The net draw as the *runtime* observes it: identical to
    /// [`StepReport::net_power`] without fault injection, possibly
    /// noisy/stuck under meter faults, and `None` on a sample dropout.
    /// Ground-truth scoring (the meter, `cap_violated`) always uses the
    /// true net power.
    pub observed_net_power: Option<Watts>,
    /// Applications that reached completion during this step (E3
    /// triggers for the Accountant).
    pub completed: Vec<String>,
    /// The full per-component breakdown.
    pub breakdown: PowerBreakdown,
}

/// The simulated server, its hosted applications, its energy storage and
/// its meters, advanced by a fixed-timestep loop.
#[derive(Debug)]
pub struct ServerSim {
    server: Server,
    apps: BTreeMap<String, RunningApp>,
    /// Pre-interned `app_power_w.<name>` recorder keys, maintained by
    /// `host`/`remove` so `step` never formats one.
    series_keys: BTreeMap<String, String>,
    esd: Box<dyn EnergyStorage>,
    esd_command: EsdCommand,
    cap: Option<Watts>,
    clock: SimClock,
    meter: PowerMeter,
    recorder: TraceRecorder,
    faults: Option<FaultInjector>,
    /// Adversarial-application behaviour; `None` (the default) keeps
    /// every hook a skipped branch, exactly like `faults`.
    adversary: Option<AdversaryInjector>,
    /// Flight-recorder handle; `None` (the default) keeps every
    /// emission site a skipped branch.
    obs: Option<Obs>,
    /// Request-driven offered load; `None` (the default) keeps apps on
    /// the scripted always-saturated path, byte-identical to before the
    /// subsystem existed.
    traffic: Option<TrafficSource>,
}

impl ServerSim {
    /// Creates a simulation of a server with the given storage device
    /// (use [`powermed_esd::NoEsd`] for none).
    pub fn new(spec: ServerSpec, esd: Box<dyn EnergyStorage>) -> Self {
        Self {
            server: Server::new(spec),
            apps: BTreeMap::new(),
            series_keys: BTreeMap::new(),
            esd,
            esd_command: EsdCommand::Idle,
            cap: None,
            clock: SimClock::new(),
            meter: PowerMeter::new(),
            recorder: TraceRecorder::new(),
            faults: None,
            adversary: None,
            obs: None,
            traffic: None,
        }
    }

    /// Attaches an open-loop request source driving the hosted apps.
    ///
    /// Apps are registered in name order (the popularity ranking: first
    /// name = Zipf rank 1) with their phase-0 uncapped throughput as
    /// service capacity. From the next step on, each running app serves
    /// its request queue at its operating point's roofline rate instead
    /// of executing unconditionally; utilization, power demand and
    /// heartbeats all track *served* work.
    ///
    /// # Panics
    ///
    /// Panics if no apps are hosted yet (the source needs the app list
    /// to place popularity and calibrate request cost).
    pub fn attach_traffic(&mut self, config: TrafficConfig) {
        let spec = self.server.spec();
        let apps: Vec<(String, f64)> = self
            .apps
            .iter()
            .map(|(name, app)| (name.clone(), app.profile().uncapped(spec).throughput))
            .collect();
        self.traffic = Some(TrafficSource::new(config, &apps));
    }

    /// The attached traffic source, if any.
    pub fn traffic(&self) -> Option<&TrafficSource> {
        self.traffic.as_ref()
    }

    /// Attaches a flight-recorder observability handle. The handle is
    /// usually a clone of the mediator's, so the simulator's metrics
    /// and the mediator's journal land in one plane.
    pub fn set_observability(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The attached observability handle, if any.
    pub fn observability(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// Enables deterministic fault injection for this simulation.
    ///
    /// When the scenario configures ESD degradation, the storage device
    /// is wrapped in a [`DegradedEsd`] — the policy keeps planning
    /// against the nominal parameters while the substrate delivers the
    /// degraded behaviour.
    pub fn with_fault_injection(mut self, config: FaultConfig) -> Self {
        if config.esd_degradation_active() {
            let nominal = std::mem::replace(&mut self.esd, Box::new(powermed_esd::NoEsd));
            self.esd = Box::new(DegradedEsd::new(
                nominal,
                config.esd_capacity_fade,
                config.esd_efficiency_derate,
            ));
        }
        self.faults = Some(FaultInjector::new(config));
        self
    }

    /// Enables deterministic adversarial-application behaviour for
    /// this simulation. An inert configuration (no channels active)
    /// leaves every output bit-identical to an un-adversarial run.
    pub fn with_adversary(mut self, config: AdversaryConfig) -> Self {
        self.adversary = Some(AdversaryInjector::new(config));
        self
    }

    /// The active adversary injector, if any.
    pub fn adversary(&self) -> Option<&AdversaryInjector> {
        self.adversary.as_ref()
    }

    /// Misbehaviour counters (zeroed default when no adversary).
    pub fn adversary_stats(&self) -> AdversaryStats {
        self.adversary
            .as_ref()
            .map(AdversaryInjector::stats)
            .unwrap_or_default()
    }

    /// The active fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Fault counters (zeroed default when injection is off).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultInjector::stats)
            .unwrap_or_default()
    }

    /// The deterministic fault trace (empty when injection is off).
    pub fn fault_trace(&self) -> &[FaultRecord] {
        self.faults.as_ref().map_or(&[], FaultInjector::trace)
    }

    /// The server being simulated.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access to the server for knob actuation,
    /// suspend/resume, etc. (the policy's enforcement path).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// The energy storage device.
    pub fn esd(&self) -> &dyn EnergyStorage {
        self.esd.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    /// The active power cap, if any.
    pub fn cap(&self) -> Option<Watts> {
        self.cap
    }

    /// Sets or clears the server power cap (event E1).
    pub fn set_cap(&mut self, cap: Option<Watts>) {
        self.cap = cap;
        if let Some(c) = cap {
            self.recorder.push("cap_w", self.clock.now(), c.value());
        }
    }

    /// Sets the standing ESD command (applied every step until changed).
    pub fn set_esd_command(&mut self, command: EsdCommand) {
        self.esd_command = command;
    }

    /// The standing ESD command.
    pub fn esd_command(&self) -> EsdCommand {
        self.esd_command
    }

    /// Hosts an application (event E2), placing it on the server with
    /// the given initial knob setting.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerError`] from placement (duplicate name,
    /// invalid knob, insufficient cores).
    pub fn host(&mut self, profile: AppProfile, knob: KnobSetting) -> Result<(), ServerError> {
        let name = profile.name().to_string();
        self.server.host_app(&name, knob)?;
        self.series_keys
            .insert(name.clone(), format!("app_power_w.{name}"));
        self.apps
            .insert(name, RunningApp::new(profile, self.clock.now()));
        Ok(())
    }

    /// Removes an application (event E3 handling), releasing its cores.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownApp`] when `name` is not hosted.
    pub fn remove(&mut self, name: &str) -> Result<(), ServerError> {
        self.server.remove_app(name)?;
        self.apps.remove(name);
        self.series_keys.remove(name);
        if let Some(f) = self.faults.as_mut() {
            f.forget_app(name);
        }
        Ok(())
    }

    /// Writes `knob` for `name` through the (possibly faulty) actuation
    /// path. Without fault injection this is exactly
    /// [`Server::set_knobs`]; with it, the write may be rejected
    /// ([`ServerError::ActuationRejected`]), silently leave the stale
    /// setting in force, or land only partially (DVFS applied, core
    /// re-allocation not).
    ///
    /// # Errors
    ///
    /// Propagates [`ServerError`] from the server (unknown app, invalid
    /// knob) plus injected [`ServerError::ActuationRejected`] failures.
    pub fn set_knobs(&mut self, name: &str, knob: KnobSetting) -> Result<(), ServerError> {
        let outcome = self
            .faults
            .as_mut()
            .map_or(KnobWriteOutcome::Apply, |f| f.knob_write(name));
        if let Some(obs) = self.obs.as_ref() {
            let label = match outcome {
                KnobWriteOutcome::Apply => "apply",
                KnobWriteOutcome::Reject => "reject",
                KnobWriteOutcome::Stale => "stale",
                KnobWriteOutcome::Partial => "partial",
            };
            obs.inc(&prom_label("knob_writes_total", &[("outcome", label)]));
        }
        match outcome {
            KnobWriteOutcome::Apply => self.server.set_knobs(name, knob),
            KnobWriteOutcome::Reject => Err(ServerError::ActuationRejected(name.to_string())),
            // The interface accepted the write but the setting never
            // landed — from the caller's side this looks like success.
            KnobWriteOutcome::Stale => {
                self.server
                    .assignment(name)
                    .ok_or_else(|| ServerError::UnknownApp(name.to_string()))?;
                Ok(())
            }
            KnobWriteOutcome::Partial => {
                let current = self
                    .server
                    .assignment(name)
                    .ok_or_else(|| ServerError::UnknownApp(name.to_string()))?
                    .knob()
                    .cores();
                self.server.set_knobs(name, knob.with_cores(current))
            }
        }
    }

    /// Names of hosted applications.
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// The runtime state of `name`.
    pub fn app(&self, name: &str) -> Option<&RunningApp> {
        self.apps.get(name)
    }

    /// Mutable runtime state of `name` (heartbeat reads need `&mut`).
    pub fn app_mut(&mut self, name: &str) -> Option<&mut RunningApp> {
        self.apps.get_mut(name)
    }

    /// The heartbeat rate `name` *reports* for the trailing window
    /// ending at `now` — the truth from
    /// [`RunningApp::heartbeat_rate`], unless the app is a configured
    /// adversary, in which case the claim is inflated, deflated,
    /// jittered or phase-spoofed per the adversary channels. This is
    /// the only heartbeat the mediator gets to see; ground truth stays
    /// available through [`ServerSim::app_mut`] for scoring.
    pub fn reported_heartbeat(&mut self, name: &str, now: Seconds) -> Option<f64> {
        let truth = self.apps.get_mut(name)?.heartbeat_rate(now);
        match self.adversary.as_mut() {
            Some(a) => a.report_heartbeat(name, truth),
            None => truth,
        }
    }

    /// Instantaneously measures `(dynamic power, throughput)` of `name`
    /// at `knob` — the simulation analogue of the paper's short online
    /// calibration run at one sample setting. The app is not disturbed.
    ///
    /// Returns `None` for unknown apps.
    pub fn probe(&self, name: &str, knob: KnobSetting) -> Option<(Watts, f64)> {
        let app = self.apps.get(name)?;
        let spec = self.server.spec();
        let op = app.operating_point(spec, knob);
        let throughput = match self.adversary.as_ref() {
            // A sandbagging app demonstrates deliberately poor
            // throughput at sub-maximal probe settings.
            Some(a) => a.probe_throughput(name, knob == KnobSetting::max_for(spec), op.throughput),
            None => op.throughput,
        };
        Some((op.dynamic_power, throughput))
    }

    /// The cumulative power meter.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// The recorded time series.
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Mutable access to the recorder (policies may add their own
    /// series).
    pub fn recorder_mut(&mut self) -> &mut TraceRecorder {
        &mut self.recorder
    }

    /// Advances the simulation by `dt`.
    pub fn step(&mut self, dt: Seconds) -> StepReport {
        self.clock.advance(dt);
        let now = self.clock.now();

        // 0. Fault bookkeeping: restart apps whose crash timer expired,
        //    roll new crashes for running apps (BTreeMap name order, so
        //    the draw sequence is deterministic), and keep crashed apps
        //    down even if the policy tried to resume them.
        if let Some(a) = self.adversary.as_mut() {
            a.begin_step(now);
        }
        if let Some(f) = self.faults.as_mut() {
            f.begin_step(self.clock.steps(), now);
            for name in f.restarts_due() {
                if self.apps.contains_key(&name) {
                    let _ = self.server.resume_app(&name);
                }
            }
            for name in self.apps.keys() {
                let running = self
                    .server
                    .assignment(name)
                    .is_some_and(|a| a.run_state() == AppRunState::Running);
                let completed = self.apps[name].completed();
                if (running && !completed && f.crash_roll(name)) || f.is_crashed(name) {
                    let _ = self.server.suspend_app(name);
                }
            }
        }

        // Draw this step's request arrivals (and close any SLO windows
        // that ended) before apps get to serve them.
        if let Some(t) = self.traffic.as_mut() {
            t.begin_step(now, dt);
        }

        // 1. Applications run (or idle) at their assigned knobs. The
        //    spec is borrowed, not cloned: `apps` and `server` are
        //    disjoint fields, and the borrow ends before the
        //    suspend_app calls below.
        let mut demands: BTreeMap<String, AppDemand> = BTreeMap::new();
        let mut completed = Vec::new();
        // Effective-knob overrides for defiant apps (empty — and
        // allocation-free — without an adversary).
        let mut overrides: BTreeMap<String, KnobSetting> = BTreeMap::new();
        let spec = self.server.spec();
        for (name, app) in &mut self.apps {
            let Some(assignment) = self.server.assignment(name) else {
                continue;
            };
            // A defiant app runs at a hotter operating point than the
            // acked assignment (the readback still shows the
            // commanded knob — from the mediator's side the write
            // landed).
            let commanded = assignment.knob();
            let knob = match self.adversary.as_ref() {
                Some(a) => a.effective_knob(name, spec, commanded),
                None => commanded,
            };
            if knob != commanded {
                overrides.insert(name.clone(), knob);
            }
            match assignment.run_state() {
                AppRunState::Running => {
                    let was_done = app.completed();
                    let demand = match self.traffic.as_mut() {
                        // Request-driven: the app serves its queue at
                        // the operating point's roofline rate;
                        // utilization (and therefore power demand and
                        // heartbeats) tracks served work.
                        Some(traffic) => {
                            let op = app.operating_point(spec, knob);
                            let capacity_ops = op.throughput * dt.value();
                            let served = traffic.serve(name, capacity_ops, now);
                            let utilization = if capacity_ops > 0.0 {
                                served / capacity_ops
                            } else {
                                0.0
                            };
                            app.step_served(&op, utilization, now, dt)
                        }
                        // Scripted: the app executes unconditionally.
                        None => app.step(spec, knob, now, dt),
                    };
                    demands.insert(name.clone(), demand);
                    if !was_done && app.completed() {
                        completed.push(name.clone());
                    }
                }
                AppRunState::Suspended => {
                    app.step_suspended(now);
                }
            }
        }
        // An application that just completed has exited its process: its
        // cores idle and its socket may deep-sleep. Model that by
        // suspending it on the server (the Accountant's E3 will remove
        // it properly).
        for name in &completed {
            let _ = self.server.suspend_app(name);
        }

        // 2. Server power accounting (at the knobs the apps *actually*
        //    ran, which for defiant apps is hotter than the acked
        //    assignment).
        let breakdown = self.server.power_draw_with(&demands, &overrides, dt);
        let gross = breakdown.total();

        // 3. ESD command execution. Charging is clamped to headroom under
        //    the cap (charging must never itself violate Eq. 3). A
        //    stuck-at-idle device silently drops non-idle commands.
        let mut command = self.esd_command;
        if let Some(f) = self.faults.as_mut() {
            if f.esd_stuck() && command != EsdCommand::Idle {
                f.note_esd_ignored();
                command = EsdCommand::Idle;
            }
        }
        let (esd_charge, esd_discharge) = match command {
            EsdCommand::Idle => (Watts::ZERO, Watts::ZERO),
            EsdCommand::Charge(p) => {
                let headroom = match self.cap {
                    Some(cap) => (cap - gross).max_zero(),
                    None => p,
                };
                (self.esd.charge(p.min(headroom), dt), Watts::ZERO)
            }
            EsdCommand::Discharge(p) => (Watts::ZERO, self.esd.discharge(p, dt)),
            EsdCommand::DischargeToCap => {
                let deficit = match self.cap {
                    Some(cap) => (gross - cap).max_zero(),
                    None => Watts::ZERO,
                };
                if deficit.is_zero() {
                    (Watts::ZERO, Watts::ZERO)
                } else {
                    (Watts::ZERO, self.esd.discharge(deficit, dt))
                }
            }
        };
        self.esd.tick(dt);

        let net = gross + esd_charge - esd_discharge;
        self.meter.sample(net, self.cap, dt);
        let cap_violated = match self.cap {
            Some(cap) => net.violates_cap(cap),
            None => false,
        };
        // What the runtime gets to see. Ground truth (meter, violation
        // flag above) is untouched by meter faults.
        let observed_net_power = match self.faults.as_mut() {
            Some(f) => f.observe_net(net),
            None => Some(net),
        };

        // 4. Record the standard series.
        self.recorder.push("gross_w", now, gross.value());
        self.recorder.push("net_w", now, net.value());
        self.recorder.push("esd_soc", now, self.esd.soc().value());
        for (name, p) in &breakdown.apps {
            // Per-app series keys are interned at host() time so the
            // per-step hot path allocates no strings.
            match self.series_keys.get(name) {
                Some(key) => self.recorder.push(key, now, p.value()),
                None => self
                    .recorder
                    .push_owned(format!("app_power_w.{name}"), now, p.value()),
            }
        }
        // Observed-vs-true divergence is recorded whenever a sample
        // exists (zero without injection), so sensor-fault figures can
        // plot it without bespoke plumbing. Dropouts leave a gap.
        if let Some(seen) = observed_net_power {
            self.recorder
                .push("net_divergence_w", now, (seen - net).value());
        }
        // Fault-only series: nothing extra is recorded when injection
        // is off, keeping fault-free traces bit-identical to before.
        if let Some(f) = self.faults.as_ref() {
            if let Some(obs) = observed_net_power {
                self.recorder.push("net_observed_w", now, obs.value());
            }
            self.recorder
                .push("faults_total", now, f.stats().total_events() as f64);
        }
        // Traffic-only series and events: nothing is recorded or
        // emitted when no source is attached, keeping scripted traces
        // bit-identical to before.
        if let Some(t) = self.traffic.as_mut() {
            let stats = t.stats();
            self.recorder.push(
                "traffic_backlog_ops",
                now,
                stats.offered_ops - stats.served_ops,
            );
            self.recorder
                .push("traffic_attainment", now, stats.attainment());
            let events = t.take_events();
            if let Some(obs) = self.obs.as_ref() {
                for event in events {
                    obs.emit(
                        now,
                        match event {
                            TrafficEvent::DemandSpike { app, ratio } => {
                                ObsEvent::DemandSpike { app, ratio }
                            }
                            TrafficEvent::SloWindow {
                                app,
                                attainment,
                                ok,
                            } => ObsEvent::SloWindow {
                                app,
                                attainment,
                                ok,
                            },
                        },
                    );
                }
            }
        }
        if let Some(obs) = self.obs.as_ref() {
            obs.inc("sim_steps_total");
            if let Some(cap) = self.cap {
                if cap_violated {
                    obs.observe("cap_violation_w", (net - cap).value());
                }
            }
            if observed_net_power.is_none() {
                obs.inc("sensor_dropouts_total");
            }
        }

        StepReport {
            now,
            gross_power: gross,
            net_power: net,
            esd_charge,
            esd_discharge,
            cap_violated,
            observed_net_power,
            completed,
            breakdown,
        }
    }

    /// Runs for `duration` in steps of `dt`, returning the last report.
    ///
    /// The step count is `duration / dt` rounded, with a floor of one:
    /// at least one step always executes, even when `duration < dt`.
    pub fn run_for(&mut self, duration: Seconds, dt: Seconds) -> StepReport {
        let steps = (duration.value() / dt.value()).round().max(1.0) as u64;
        let mut last = None;
        for _ in 0..steps {
            last = Some(self.step(dt));
        }
        last.expect("at least one step")
    }

    /// Total work completed by `name` so far (0 for unknown apps).
    pub fn ops_done(&self, name: &str) -> f64 {
        self.apps.get(name).map_or(0.0, RunningApp::ops_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_esd::{IdealEsd, LeadAcidBattery, NoEsd};
    use powermed_units::Joules;
    use powermed_workloads::catalog;

    fn sim() -> ServerSim {
        ServerSim::new(ServerSpec::xeon_e5_2620(), Box::new(NoEsd))
    }

    const DT: Seconds = Seconds::new(0.1);

    #[test]
    fn empty_server_idles_at_p_idle() {
        let mut s = sim();
        let r = s.step(DT);
        assert_eq!(r.gross_power, Watts::new(50.0));
        assert_eq!(r.net_power, r.gross_power);
        assert!(!r.cap_violated);
    }

    #[test]
    fn hosted_app_progresses_and_draws_power() {
        let mut s = sim();
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        let r = s.run_for(Seconds::new(1.0), DT);
        assert!(r.gross_power.value() > 80.0, "gross {:?}", r.gross_power);
        assert!(s.ops_done("kmeans") > 0.0);
        assert_eq!(s.app_names(), vec!["kmeans".to_string()]);
    }

    #[test]
    fn suspended_app_stops_drawing() {
        let mut s = sim();
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.server_mut().suspend_app("kmeans").unwrap();
        let r = s.step(DT);
        assert_eq!(r.gross_power, Watts::new(50.0), "socket deep sleeps");
        assert_eq!(s.ops_done("kmeans"), 0.0);
    }

    #[test]
    fn cap_violation_flagged() {
        let mut s = sim();
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.set_cap(Some(Watts::new(60.0)));
        let r = s.step(DT);
        assert!(r.cap_violated);
        assert!(s.meter().compliance().violation_fraction() > 0.99);
    }

    #[test]
    fn completion_reported_once() {
        let mut s = sim();
        let spec = s.server().spec().clone();
        let knob = KnobSetting::max_for(&spec);
        let short = catalog::finite(catalog::kmeans(), &spec, Seconds::new(0.5));
        s.host(short, knob).unwrap();
        let mut completions = 0;
        for _ in 0..20 {
            completions += s.step(DT).completed.len();
        }
        assert_eq!(completions, 1);
        assert!(s.app("kmeans").unwrap().completed());
        // Completed-but-not-removed app draws only background.
        let r = s.step(DT);
        let app_power = r.breakdown.apps["kmeans"];
        assert!(app_power.value() < 5.0, "exited app draws {app_power:?}");
    }

    #[test]
    fn esd_charge_respects_cap_headroom() {
        let mut s = ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(IdealEsd::new(Joules::new(1000.0), Watts::new(100.0))),
        );
        s.set_cap(Some(Watts::new(70.0)));
        s.set_esd_command(EsdCommand::Charge(Watts::new(100.0)));
        let r = s.step(DT);
        // Idle 50 W, cap 70 W: only 20 W of charge headroom.
        assert!((r.esd_charge - Watts::new(20.0)).abs() < Watts::new(1e-9));
        assert!((r.net_power - Watts::new(70.0)).abs() < Watts::new(1e-9));
        assert!(!r.cap_violated);
    }

    #[test]
    fn esd_discharge_lowers_net_power() {
        let mut s = ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(IdealEsd::new(Joules::new(1000.0), Watts::new(100.0)).with_soc(1.0)),
        );
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.set_esd_command(EsdCommand::Discharge(Watts::new(20.0)));
        let r = s.step(DT);
        assert_eq!(r.esd_discharge, Watts::new(20.0));
        assert!((r.net_power - (r.gross_power - Watts::new(20.0))).abs() < Watts::new(1e-9));
    }

    #[test]
    fn lead_acid_bank_and_spend_cycle() {
        let mut s = ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(LeadAcidBattery::server_ups()),
        );
        s.set_cap(Some(Watts::new(70.0)));
        s.set_esd_command(EsdCommand::Charge(Watts::new(50.0)));
        s.run_for(Seconds::new(10.0), DT);
        let banked = s.esd().stored();
        assert!(banked.value() > 150.0, "banked {banked:?}");
        s.set_esd_command(EsdCommand::Discharge(Watts::new(40.0)));
        let r = s.step(DT);
        assert!(r.esd_discharge.value() > 0.0);
        assert!(s.esd().stored() < banked);
    }

    #[test]
    fn probe_matches_model() {
        let mut s = sim();
        let spec = s.server().spec().clone();
        let knob = KnobSetting::max_for(&spec);
        s.host(catalog::stream(), knob).unwrap();
        let (p, t) = s.probe("stream", knob).unwrap();
        let op = catalog::stream().evaluate(&spec, knob);
        assert_eq!(p, op.dynamic_power);
        assert_eq!(t, op.throughput);
        assert!(s.probe("ghost", knob).is_none());
    }

    #[test]
    fn recorder_captures_series() {
        let mut s = sim();
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::bfs(), knob).unwrap();
        s.set_cap(Some(Watts::new(100.0)));
        s.run_for(Seconds::new(0.5), DT);
        let r = s.recorder();
        assert!(r.series("gross_w").unwrap().len() >= 5);
        assert!(r.series("app_power_w.bfs").is_some());
        assert!(r.series("cap_w").is_some());
    }

    #[test]
    fn no_injection_reports_true_power_as_observed() {
        let mut s = sim();
        let r = s.step(DT);
        assert_eq!(r.observed_net_power, Some(r.net_power));
        assert!(s.fault_injector().is_none());
        assert_eq!(s.fault_stats().total_events(), 0);
        assert!(s.fault_trace().is_empty());
        assert!(s.recorder().series("net_observed_w").is_none());
    }

    #[test]
    fn divergence_series_is_always_recorded() {
        // Without injection the observed channel is the truth, so the
        // divergence series exists and is identically zero.
        let mut s = sim();
        s.run_for(Seconds::new(0.5), DT);
        let d = s.recorder().series("net_divergence_w").unwrap();
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|(_, v)| *v == 0.0));

        // With meter noise it exists and deviates somewhere.
        let cfg = crate::faults::FaultConfig {
            seed: 11,
            meter_noise_sigma: 0.1,
            ..crate::faults::FaultConfig::default()
        };
        let mut noisy = sim().with_fault_injection(cfg);
        let knob = KnobSetting::max_for(noisy.server().spec());
        noisy.host(catalog::kmeans(), knob).unwrap();
        noisy.run_for(Seconds::new(2.0), DT);
        let d = noisy.recorder().series("net_divergence_w").unwrap();
        assert!(d.iter().any(|(_, v)| v.abs() > 1e-6), "noise never showed");
    }

    #[test]
    fn observability_counts_steps_violations_and_knob_outcomes() {
        use powermed_telemetry::journal::{Obs, ObsConfig};
        let mut s = sim();
        let obs = Obs::new(ObsConfig::default());
        s.set_observability(obs.clone());
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.set_cap(Some(Watts::new(60.0)));
        s.set_knobs("kmeans", knob).unwrap();
        s.run_for(Seconds::new(0.5), DT);
        let m = obs.metrics();
        assert_eq!(m.counter("sim_steps_total"), 5);
        assert_eq!(m.counter("knob_writes_total{outcome=\"apply\"}"), 1);
        let h = m.histogram("cap_violation_w").expect("over-cap steps seen");
        assert_eq!(h.count(), 5, "every step violated the 60 W cap");
    }

    #[test]
    fn fault_free_config_changes_nothing_but_bookkeeping() {
        let run = |faulted: bool| {
            let mut s = sim();
            if faulted {
                s = s.with_fault_injection(crate::faults::FaultConfig::none(3));
            }
            let knob = KnobSetting::max_for(s.server().spec());
            s.host(catalog::kmeans(), knob).unwrap();
            s.set_cap(Some(Watts::new(100.0)));
            let mut nets = Vec::new();
            for _ in 0..50 {
                nets.push(s.step(DT).net_power);
            }
            (nets, s.ops_done("kmeans"))
        };
        assert_eq!(run(false), run(true), "inert injection is bit-identical");
    }

    #[test]
    fn fault_traces_are_seed_deterministic() {
        let run = |seed: u64| {
            let cfg = crate::faults::FaultConfig {
                seed,
                knob_failure_prob: 0.3,
                meter_noise_sigma: 0.05,
                meter_dropout_prob: 0.05,
                app_crash_prob: 0.02,
                app_restart_steps: 5,
                ..crate::faults::FaultConfig::default()
            };
            let mut s = sim().with_fault_injection(cfg);
            let spec = s.server().spec().clone();
            let knob = KnobSetting::max_for(&spec);
            s.host(catalog::kmeans(), knob).unwrap();
            s.host(catalog::stream(), KnobSetting::min_for(&spec))
                .unwrap();
            let mut observed = Vec::new();
            for i in 0..100 {
                if i % 10 == 0 {
                    let _ = s.set_knobs("kmeans", knob);
                }
                observed.push(s.step(DT).observed_net_power);
            }
            (s.fault_trace().to_vec(), observed)
        };
        assert_eq!(run(11), run(11), "same seed: bit-identical trace");
        assert_ne!(run(11).0, run(12).0, "different seed: diverging trace");
    }

    #[test]
    fn crashed_app_stays_down_until_restart() {
        let cfg = crate::faults::FaultConfig {
            app_crash_prob: 1.0,
            app_restart_steps: 3,
            ..crate::faults::FaultConfig::default()
        };
        let mut s = sim().with_fault_injection(cfg);
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        // First step crashes the app (p = 1).
        s.step(DT);
        assert_eq!(s.fault_stats().app_crashes, 1);
        assert_eq!(s.ops_done("kmeans"), 0.0);
        // The policy tries to resume it; the crash dominates.
        s.server_mut().resume_app("kmeans").unwrap();
        s.step(DT);
        assert_eq!(s.ops_done("kmeans"), 0.0, "still down");
        // After the restart timer it runs again (and immediately
        // re-crashes with p = 1, but the restart was recorded).
        for _ in 0..4 {
            s.step(DT);
        }
        assert!(s.fault_stats().app_restarts >= 1);
    }

    #[test]
    fn stuck_at_idle_esd_ignores_commands() {
        let cfg = crate::faults::FaultConfig {
            esd_stuck_at_idle: true,
            ..crate::faults::FaultConfig::default()
        };
        let mut s = ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(IdealEsd::new(Joules::new(1000.0), Watts::new(100.0)).with_soc(1.0)),
        )
        .with_fault_injection(cfg);
        s.set_esd_command(EsdCommand::Discharge(Watts::new(20.0)));
        let r = s.step(DT);
        assert_eq!(r.esd_discharge, Watts::ZERO, "command silently dropped");
        assert_eq!(r.net_power, r.gross_power);
        assert_eq!(s.fault_stats().esd_commands_ignored, 1);
    }

    #[test]
    fn esd_degradation_wraps_the_device() {
        let cfg = crate::faults::FaultConfig {
            esd_capacity_fade: 0.5,
            ..crate::faults::FaultConfig::default()
        };
        let s = ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(IdealEsd::new(Joules::new(1000.0), Watts::new(100.0))),
        )
        .with_fault_injection(cfg);
        assert_eq!(s.esd().capacity(), Joules::new(500.0));
    }

    #[test]
    fn rejected_knob_write_surfaces_an_error() {
        let cfg = crate::faults::FaultConfig {
            knob_failure_prob: 1.0,
            ..crate::faults::FaultConfig::default()
        };
        let mut s = sim().with_fault_injection(cfg);
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        let target = KnobSetting::min_for(s.server().spec());
        // With p = 1 every write faults; over a few attempts we must see
        // at least one of each mode and never a clean apply.
        let mut saw_error = false;
        for _ in 0..30 {
            s.step(DT);
            if s.set_knobs("kmeans", target).is_err() {
                saw_error = true;
            }
        }
        assert!(saw_error, "a rejection must surface as Err");
        let stats = s.fault_stats();
        assert!(stats.knob_rejections > 0);
        assert!(stats.knob_stale + stats.knob_partial > 0);
    }

    #[test]
    fn adversary_free_config_changes_nothing_but_bookkeeping() {
        let run = |adversarial: bool| {
            let mut s = sim();
            if adversarial {
                s = s.with_adversary(crate::adversary::AdversaryConfig::none(3));
            }
            let knob = KnobSetting::max_for(s.server().spec());
            s.host(catalog::kmeans(), knob).unwrap();
            s.set_cap(Some(Watts::new(100.0)));
            let mut nets = Vec::new();
            let mut claims = Vec::new();
            for i in 0..50 {
                nets.push(s.step(DT).net_power);
                claims.push(s.reported_heartbeat("kmeans", Seconds::new((i + 1) as f64 * 0.1)));
            }
            (nets, claims, s.ops_done("kmeans"))
        };
        assert_eq!(run(false), run(true), "inert adversary is bit-identical");
    }

    #[test]
    fn defiant_app_draws_more_than_its_acked_knob() {
        let run = |defiant: bool| {
            let mut s = sim();
            if defiant {
                s = s.with_adversary(crate::adversary::AdversaryConfig::noncompliance(
                    1,
                    &["kmeans"],
                ));
            }
            let low = KnobSetting::min_for(s.server().spec()).with_cores(4);
            s.host(catalog::kmeans(), low).unwrap();
            let r = s.run_for(Seconds::new(1.0), DT);
            (r.gross_power, s.ops_done("kmeans"))
        };
        let (honest_p, honest_ops) = run(false);
        let (defiant_p, defiant_ops) = run(true);
        assert!(
            defiant_p > honest_p + Watts::new(1.0),
            "running hot must show in true power: {honest_p:?} vs {defiant_p:?}"
        );
        assert!(defiant_ops > honest_ops, "and in true progress");
    }

    #[test]
    fn misreported_heartbeat_diverges_from_ground_truth() {
        let mut s = sim().with_adversary(crate::adversary::AdversaryConfig {
            heartbeat_factor: 2.0,
            heartbeat_jitter: 0.0,
            apps: vec!["kmeans".to_string()],
            ..crate::adversary::AdversaryConfig::default()
        });
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.run_for(Seconds::new(2.0), DT);
        let now = s.now();
        let claimed = s.reported_heartbeat("kmeans", now).unwrap();
        let truth = s.app_mut("kmeans").unwrap().heartbeat_rate(now).unwrap();
        assert!(
            (claimed - 2.0 * truth).abs() < 1e-9,
            "claim {claimed} must be twice the truth {truth}"
        );
        assert!(s.adversary_stats().heartbeats_misreported > 0);
    }

    #[test]
    fn remove_frees_cores() {
        let mut s = sim();
        let knob = KnobSetting::max_for(s.server().spec());
        s.host(catalog::kmeans(), knob).unwrap();
        s.host(catalog::stream(), knob).unwrap();
        s.remove("kmeans").unwrap();
        assert_eq!(s.app_names(), vec!["stream".to_string()]);
        assert!(s.remove("kmeans").is_err());
        // A third app can now fit.
        s.host(catalog::bfs(), knob).unwrap();
    }

    #[test]
    fn traffic_driven_apps_track_served_load() {
        let knob = KnobSetting::max_for(&ServerSpec::xeon_e5_2620());
        // Scripted twin: always saturated.
        let mut scripted = sim();
        scripted.host(catalog::kmeans(), knob).unwrap();
        scripted.host(catalog::stream(), knob).unwrap();
        // Request-driven twin at modest offered load, no bursts.
        let mut driven = sim();
        driven.host(catalog::kmeans(), knob).unwrap();
        driven.host(catalog::stream(), knob).unwrap();
        driven.attach_traffic(TrafficConfig {
            target_utilization: 0.4,
            flash_crowds: 0,
            ..TrafficConfig::default()
        });

        let mut scripted_gross = 0.0;
        let mut driven_gross = 0.0;
        for _ in 0..100 {
            scripted_gross += scripted.step(DT).gross_power.value();
            driven_gross += driven.step(DT).gross_power.value();
        }
        // Partially utilized apps make less progress and draw less
        // power than saturated ones.
        assert!(driven.ops_done("kmeans") > 0.0);
        assert!(driven.ops_done("kmeans") < scripted.ops_done("kmeans"));
        assert!(
            driven_gross < scripted_gross,
            "{driven_gross} vs {scripted_gross}"
        );
        let stats = driven.traffic().unwrap().stats();
        assert!(stats.completions > 0, "no requests completed");
        // Traffic-only series exist on the driven sim and not the
        // scripted one (zero-cost-off).
        assert!(driven.recorder().series("traffic_attainment").is_some());
        assert!(scripted.recorder().series("traffic_attainment").is_none());
    }

    #[test]
    fn traffic_events_reach_the_journal() {
        let knob = KnobSetting::max_for(&ServerSpec::xeon_e5_2620());
        let mut s = sim();
        let obs = Obs::new(powermed_telemetry::journal::ObsConfig::default());
        s.set_observability(obs.clone());
        s.host(catalog::kmeans(), knob).unwrap();
        s.attach_traffic(TrafficConfig {
            flash_magnitude: 8.0,
            flash_crowds: 3,
            ..TrafficConfig::default()
        });
        for _ in 0..864 {
            s.step(DT);
        }
        let journal = obs.journal_snapshot();
        assert!(
            journal
                .iter()
                .any(|r| matches!(r.event, ObsEvent::SloWindow { .. })),
            "no SLO window verdicts in the journal"
        );
        assert!(
            journal
                .iter()
                .any(|r| matches!(r.event, ObsEvent::DemandSpike { .. })),
            "no demand spikes in the journal"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use powermed_esd::NoEsd;
    use powermed_units::Ratio;
    use powermed_workloads::catalog;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For any sequence of suspend/resume/knob actuations, gross
        /// power stays within the physical envelope
        /// `[P_idle, rated power]` and energy accounting is monotone.
        #[test]
        fn prop_gross_power_within_envelope(
            ops in proptest::collection::vec((0u8..4, 0usize..2, 0usize..432), 1..40),
        ) {
            let spec = ServerSpec::xeon_e5_2620();
            let grid = spec.knob_grid();
            let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
            let start = KnobSetting::min_for(&spec).with_cores(4);
            sim.host(catalog::kmeans(), start).unwrap();
            sim.host(catalog::stream(), start).unwrap();
            let names = ["kmeans", "stream"];
            let mut prev_energy = sim.meter().energy();
            for (kind, which, idx) in ops {
                let name = names[which];
                match kind {
                    0 => { let _ = sim.server_mut().suspend_app(name); }
                    1 => { let _ = sim.server_mut().resume_app(name); }
                    2 => {
                        let knob = grid.get(idx).unwrap();
                        let cores_ok = knob.cores() <= 4
                            || sim.server().assignment(name).is_some();
                        if cores_ok {
                            let _ = sim.server_mut().set_knobs(name, knob);
                        }
                    }
                    _ => {}
                }
                let report = sim.step(Seconds::new(0.1));
                prop_assert!(report.gross_power >= spec.idle_power() - Watts::new(1e-9));
                prop_assert!(report.gross_power <= spec.rated_power() + Watts::new(1e-6));
                prop_assert!(sim.meter().energy() >= prev_energy);
                prev_energy = sim.meter().energy();
            }
        }

        /// Progress is conserved: total ops equal the integral of the
        /// per-step throughput, and never decrease.
        #[test]
        fn prop_ops_monotone(steps in 1usize..60, busy in 0.0f64..1.0) {
            let spec = ServerSpec::xeon_e5_2620();
            let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
            let knob = KnobSetting::max_for(&spec);
            sim.host(catalog::bfs(), knob).unwrap();
            let _ = Ratio::new(busy);
            let mut prev = 0.0;
            for _ in 0..steps {
                sim.step(Seconds::new(0.1));
                let done = sim.ops_done("bfs");
                prop_assert!(done >= prev);
                prev = done;
            }
            prop_assert!(prev > 0.0);
        }
    }
}
