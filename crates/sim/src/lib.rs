//! Discrete-time simulation engine binding the server substrate,
//! application models, energy storage and telemetry.
//!
//! [`engine::ServerSim`] advances a fixed-timestep loop (default 100 ms):
//! each step it evaluates every running application's operating point at
//! its current knob setting, converts the demands into a server
//! [`powermed_server::server::PowerBreakdown`], applies the active ESD
//! command (charge from headroom / discharge to supplement), meters the
//! net draw against the cap, and credits application progress through
//! heartbeats.
//!
//! The policies in `powermed-core` drive the engine from outside: they
//! read telemetry between steps, actuate knobs / suspend / resume through
//! [`engine::ServerSim::server_mut`], and set the ESD command. The engine
//! itself is policy-free, so baselines and the paper's schemes run on the
//! byte-identical mechanics.
//!
//! # Example
//!
//! ```
//! use powermed_esd::NoEsd;
//! use powermed_server::{KnobSetting, ServerSpec};
//! use powermed_sim::engine::ServerSim;
//! use powermed_units::Seconds;
//! use powermed_workloads::catalog;
//!
//! let mut sim = ServerSim::new(ServerSpec::xeon_e5_2620(), Box::new(NoEsd));
//! let knob = KnobSetting::max_for(sim.server().spec());
//! sim.host(catalog::kmeans(), knob)?;
//! let report = sim.step(Seconds::from_millis(100.0));
//! assert!(report.gross_power.value() > 70.0);
//! # Ok::<(), powermed_server::ServerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod app;
pub mod clock;
pub mod engine;
pub mod faults;

pub use adversary::{AdversaryConfig, AdversaryInjector};
pub use app::RunningApp;
pub use clock::SimClock;
pub use engine::{EsdCommand, ServerSim, StepReport};
pub use faults::{FaultConfig, FaultInjector, FaultKind, FaultRecord, KnobWriteOutcome};
