//! Seeded, deterministic fault injection for the simulated substrate.
//!
//! The paper's runtime assumes every DVFS/RAPL knob write lands, every
//! power sample is clean and the ESD behaves exactly as modelled. This
//! module breaks those assumptions on purpose, so the mediator can be
//! tested against a misbehaving substrate:
//!
//! * **Actuation faults** — a knob write is rejected outright, silently
//!   leaves the stale setting in force (and latches stale for a number
//!   of steps, modelling a wedged MSR/sysfs interface), or applies only
//!   partially (DVFS lands, the core re-allocation does not);
//! * **Meter faults** — multiplicative Gaussian noise, stuck/stale
//!   readings held for several steps, and sample dropouts, all applied
//!   to the value the *runtime observes*. The true net power is metered
//!   untouched for ground-truth scoring;
//! * **ESD degradation** — capacity fade and efficiency derating (via
//!   [`powermed_esd::DegradedEsd`], wired by the engine) plus a
//!   stuck-at-idle mode in which the device silently ignores every
//!   [`crate::engine::EsdCommand`];
//! * **Application crashes** — a running application crashes, stays down
//!   for a configurable number of steps, then restarts.
//!
//! # Determinism contract
//!
//! Each fault channel draws from its own `splitmix64` stream derived
//! from the scenario seed, and every draw happens at a point fixed by
//! the simulation's own (single-threaded, fixed-timestep) execution
//! order. Two runs with the same seed and the same driver therefore
//! produce bit-identical fault traces, observations and results; runs
//! with different seeds diverge. The full event log is kept in a
//! [`FaultRecord`] trace so CI can assert the contract cheaply.

use std::collections::BTreeMap;

use powermed_telemetry::faults::FaultStats;
use powermed_units::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scenario description: which faults to inject and how hard.
///
/// The default configuration injects nothing; a [`ServerSim`] built
/// without faults never consults this module at all, so the layer is
/// zero-cost when off.
///
/// [`ServerSim`]: crate::engine::ServerSim
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-channel fault streams.
    pub seed: u64,
    /// Probability that a knob write fails (per write attempt).
    pub knob_failure_prob: f64,
    /// Steps a stale-mode failure keeps the knob interface wedged
    /// (subsequent writes to the same app silently no-op until expiry).
    pub knob_stale_steps: u64,
    /// Multiplicative Gaussian noise sigma on observed power (0 = off).
    pub meter_noise_sigma: f64,
    /// Constant multiplicative bias on every observed sample
    /// (`observed = net × (1 + bias)`; 0 = off). A *correlated* error
    /// mode: unlike the zero-mean noise channel it skews every reading
    /// the same way, so any per-app quantity derived from the meter
    /// inherits the same systematic error. Draws no randomness, so
    /// enabling it never perturbs the other channels' streams.
    pub meter_bias_frac: f64,
    /// Probability (per step) that the meter sticks at its current
    /// reading.
    pub meter_stuck_prob: f64,
    /// Steps a stuck reading is held.
    pub meter_stuck_steps: u64,
    /// Probability (per step) that a sample is dropped entirely.
    pub meter_dropout_prob: f64,
    /// Fraction of ESD capacity lost to ageing, in `[0, 1)`.
    pub esd_capacity_fade: f64,
    /// Per-direction ESD conversion-efficiency multiplier in `(0, 1]`
    /// (1.0 = nominal).
    pub esd_efficiency_derate: f64,
    /// When set, the ESD silently ignores every non-idle command.
    pub esd_stuck_at_idle: bool,
    /// Probability (per running app, per step) of a transient crash.
    pub app_crash_prob: f64,
    /// Steps a crashed application stays down before restarting.
    pub app_restart_steps: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            knob_failure_prob: 0.0,
            knob_stale_steps: 10,
            meter_noise_sigma: 0.0,
            meter_bias_frac: 0.0,
            meter_stuck_prob: 0.0,
            meter_stuck_steps: 5,
            meter_dropout_prob: 0.0,
            esd_capacity_fade: 0.0,
            esd_efficiency_derate: 1.0,
            esd_stuck_at_idle: false,
            app_crash_prob: 0.0,
            app_restart_steps: 20,
        }
    }
}

impl FaultConfig {
    /// A scenario with every channel off (useful as a sweep baseline).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The PR's reference fault scenario: 1% actuation failures, 2%
    /// multiplicative meter noise, and a faded, derated ESD.
    pub fn default_scenario(seed: u64) -> Self {
        Self {
            seed,
            knob_failure_prob: 0.01,
            meter_noise_sigma: 0.02,
            esd_capacity_fade: 0.30,
            esd_efficiency_derate: 0.90,
            ..Self::default()
        }
    }

    /// Whether the ESD needs to be wrapped in a degradation model.
    pub fn esd_degradation_active(&self) -> bool {
        self.esd_capacity_fade > 0.0 || self.esd_efficiency_derate < 1.0
    }

    /// Whether any meter channel is active.
    fn meter_active(&self) -> bool {
        self.meter_noise_sigma > 0.0
            || self.meter_bias_frac != 0.0
            || self.meter_stuck_prob > 0.0
            || self.meter_dropout_prob > 0.0
    }
}

/// One injected fault, for the deterministic trace.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A knob write returned an error.
    KnobRejected {
        /// Targeted application.
        app: String,
    },
    /// A knob write silently left the old setting in force.
    KnobStale {
        /// Targeted application.
        app: String,
    },
    /// A knob write applied DVFS but not the core re-allocation.
    KnobPartial {
        /// Targeted application.
        app: String,
    },
    /// The meter latched onto its current reading.
    MeterStuck {
        /// Steps the reading will be held.
        steps: u64,
    },
    /// A power sample was dropped.
    MeterDropout,
    /// A non-idle ESD command was silently ignored.
    EsdCommandIgnored,
    /// An application crashed.
    AppCrash {
        /// The crashed application.
        app: String,
    },
    /// A crashed application restarted.
    AppRestart {
        /// The restarted application.
        app: String,
    },
}

/// A fault event stamped with the simulation step and time it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Simulation step index at injection.
    pub step: u64,
    /// Simulation time at injection.
    pub at: Seconds,
    /// What happened.
    pub kind: FaultKind,
}

/// Outcome of a fault-checked knob write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobWriteOutcome {
    /// The write goes through normally.
    Apply,
    /// The write fails loudly (the caller sees an error).
    Reject,
    /// The write silently leaves the stale setting in force.
    Stale,
    /// Only the DVFS component lands; cores stay as they were.
    Partial,
}

/// The deterministic fault source wired into
/// [`crate::engine::ServerSim`].
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    knob_rng: StdRng,
    meter_rng: StdRng,
    app_rng: StdRng,
    step: u64,
    now: Seconds,
    stats: FaultStats,
    trace: Vec<FaultRecord>,
    /// Apps whose knob interface is stale-latched, with the step the
    /// latch expires.
    stale_until: BTreeMap<String, u64>,
    /// A held (stuck) meter reading and the steps it remains held.
    held_reading: Option<(Watts, u64)>,
    /// Crashed apps and the step they restart.
    crashed: BTreeMap<String, u64>,
}

/// Derives one independent splitmix64-backed stream for channel `tag`
/// of scenario `seed` — the per-channel derivation the injector uses so
/// enabling one fault channel never perturbs another's draw sequence.
/// Exported so higher layers (the cluster control plane) reuse the same
/// pattern with their own tag space instead of inventing a second
/// seeding scheme.
pub fn channel_stream(seed: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ tag)
}

impl FaultInjector {
    /// Creates an injector for `config`, deriving one independent
    /// stream per fault channel so enabling one channel never perturbs
    /// another's sequence.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            knob_rng: channel_stream(config.seed, 0xA001),
            meter_rng: channel_stream(config.seed, 0xB002),
            app_rng: channel_stream(config.seed, 0xC003),
            config,
            step: 0,
            now: Seconds::ZERO,
            stats: FaultStats::default(),
            trace: Vec::new(),
            stale_until: BTreeMap::new(),
            held_reading: None,
            crashed: BTreeMap::new(),
        }
    }

    /// The scenario being injected.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The full deterministic fault trace.
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }

    /// Synchronizes the injector with the engine clock; called once at
    /// the top of every [`crate::engine::ServerSim::step`].
    pub(crate) fn begin_step(&mut self, step: u64, now: Seconds) {
        self.step = step;
        self.now = now;
    }

    fn record(&mut self, kind: FaultKind) {
        self.trace.push(FaultRecord {
            step: self.step,
            at: self.now,
            kind,
        });
    }

    /// Decides the fate of a knob write targeting `app`.
    pub(crate) fn knob_write(&mut self, app: &str) -> KnobWriteOutcome {
        if let Some(&until) = self.stale_until.get(app) {
            if self.step < until {
                self.stats.knob_stale += 1;
                self.record(FaultKind::KnobStale {
                    app: app.to_string(),
                });
                return KnobWriteOutcome::Stale;
            }
            self.stale_until.remove(app);
        }
        if self.config.knob_failure_prob <= 0.0 {
            return KnobWriteOutcome::Apply;
        }
        if self.knob_rng.gen_range(0.0..1.0) >= self.config.knob_failure_prob {
            return KnobWriteOutcome::Apply;
        }
        match self.knob_rng.gen_range(0u32..3) {
            0 => {
                self.stats.knob_rejections += 1;
                self.record(FaultKind::KnobRejected {
                    app: app.to_string(),
                });
                KnobWriteOutcome::Reject
            }
            1 => {
                self.stats.knob_stale += 1;
                self.stale_until
                    .insert(app.to_string(), self.step + self.config.knob_stale_steps);
                self.record(FaultKind::KnobStale {
                    app: app.to_string(),
                });
                KnobWriteOutcome::Stale
            }
            _ => {
                self.stats.knob_partial += 1;
                self.record(FaultKind::KnobPartial {
                    app: app.to_string(),
                });
                KnobWriteOutcome::Partial
            }
        }
    }

    /// Filters the true net draw into what the runtime observes this
    /// step: `None` on a dropout, a held value while stuck, otherwise
    /// the (possibly noise-perturbed) reading.
    pub(crate) fn observe_net(&mut self, net: Watts) -> Option<Watts> {
        if !self.config.meter_active() {
            return Some(net);
        }
        if let Some((held, remaining)) = self.held_reading {
            if remaining > 0 {
                self.held_reading = Some((held, remaining - 1));
                self.stats.meter_stuck += 1;
                return Some(held);
            }
            self.held_reading = None;
        }
        if self.config.meter_dropout_prob > 0.0
            && self.meter_rng.gen_range(0.0..1.0) < self.config.meter_dropout_prob
        {
            self.stats.meter_dropouts += 1;
            self.record(FaultKind::MeterDropout);
            return None;
        }
        let mut observed = net;
        if self.config.meter_bias_frac != 0.0 {
            observed = (observed * (1.0 + self.config.meter_bias_frac)).max_zero();
            self.stats.meter_biased += 1;
        }
        if self.config.meter_noise_sigma > 0.0 {
            let g = gaussian(&mut self.meter_rng);
            observed = (observed * (1.0 + self.config.meter_noise_sigma * g)).max_zero();
            self.stats.meter_noisy += 1;
        }
        if self.config.meter_stuck_prob > 0.0
            && self.meter_rng.gen_range(0.0..1.0) < self.config.meter_stuck_prob
        {
            let steps = self.config.meter_stuck_steps;
            self.held_reading = Some((observed, steps));
            self.stats.meter_stuck += 1;
            self.record(FaultKind::MeterStuck { steps });
        }
        Some(observed)
    }

    /// Whether the ESD silently ignores non-idle commands.
    pub(crate) fn esd_stuck(&self) -> bool {
        self.config.esd_stuck_at_idle
    }

    /// Accounts one ignored non-idle ESD command.
    pub(crate) fn note_esd_ignored(&mut self) {
        self.stats.esd_commands_ignored += 1;
        self.record(FaultKind::EsdCommandIgnored);
    }

    /// Returns apps whose restart timer expired this step, clearing
    /// their crash state and recording the restarts.
    pub(crate) fn restarts_due(&mut self) -> Vec<String> {
        let due: Vec<String> = self
            .crashed
            .iter()
            .filter(|(_, &at)| self.step >= at)
            .map(|(n, _)| n.clone())
            .collect();
        for name in &due {
            self.crashed.remove(name);
            self.stats.app_restarts += 1;
            self.record(FaultKind::AppRestart { app: name.clone() });
        }
        due
    }

    /// Rolls a crash for a currently-running `app`; returns `true` when
    /// it crashes this step.
    pub(crate) fn crash_roll(&mut self, app: &str) -> bool {
        if self.config.app_crash_prob <= 0.0 || self.crashed.contains_key(app) {
            return false;
        }
        if self.app_rng.gen_range(0.0..1.0) >= self.config.app_crash_prob {
            return false;
        }
        self.crashed
            .insert(app.to_string(), self.step + self.config.app_restart_steps);
        self.stats.app_crashes += 1;
        self.record(FaultKind::AppCrash {
            app: app.to_string(),
        });
        true
    }

    /// Whether `app` is currently down from a crash.
    pub(crate) fn is_crashed(&self, app: &str) -> bool {
        self.crashed.contains_key(app)
    }

    /// Forgets any crash state for a removed app.
    pub(crate) fn forget_app(&mut self, app: &str) {
        self.crashed.remove(app);
        self.stale_until.remove(app);
    }
}

/// A standard-normal sample by Box–Muller over the channel stream (the
/// vendored rand shim has no distributions module).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0); // (0, 1]
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            knob_failure_prob: 0.5,
            meter_noise_sigma: 0.1,
            meter_stuck_prob: 0.1,
            meter_dropout_prob: 0.1,
            app_crash_prob: 0.2,
            app_restart_steps: 3,
            ..FaultConfig::default()
        }
    }

    fn drive(seed: u64) -> (Vec<FaultRecord>, Vec<Option<Watts>>) {
        let mut inj = FaultInjector::new(noisy_config(seed));
        let mut observed = Vec::new();
        for step in 0..200u64 {
            inj.begin_step(step, Seconds::new(step as f64 * 0.1));
            let _ = inj.restarts_due();
            let _ = inj.crash_roll("kmeans");
            let _ = inj.knob_write("kmeans");
            observed.push(inj.observe_net(Watts::new(90.0)));
        }
        (inj.trace().to_vec(), observed)
    }

    #[test]
    fn same_seed_same_trace() {
        let (t1, o1) = drive(7);
        let (t2, o2) = drive(7);
        assert_eq!(t1, t2, "same seed must give a bit-identical trace");
        assert_eq!(o1, o2, "same seed must give bit-identical observations");
        assert!(!t1.is_empty(), "the noisy scenario injects something");
    }

    #[test]
    fn different_seed_different_trace() {
        let (t1, _) = drive(7);
        let (t2, _) = drive(8);
        assert_ne!(t1, t2, "different seeds must diverge");
    }

    #[test]
    fn inert_config_observes_truth_and_records_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::none(1));
        inj.begin_step(0, Seconds::ZERO);
        assert_eq!(inj.knob_write("a"), KnobWriteOutcome::Apply);
        assert_eq!(inj.observe_net(Watts::new(77.0)), Some(Watts::new(77.0)));
        assert!(!inj.crash_roll("a"));
        assert!(inj.trace().is_empty());
        assert_eq!(inj.stats().total_events(), 0);
    }

    #[test]
    fn stale_latch_wedges_subsequent_writes() {
        let mut inj = FaultInjector::new(FaultConfig {
            knob_failure_prob: 1.0,
            knob_stale_steps: 5,
            ..FaultConfig::default()
        });
        // Force a stale outcome by rolling until one latches.
        let mut latched_at = None;
        for step in 0..100u64 {
            inj.begin_step(step, Seconds::new(step as f64));
            if inj.knob_write("x") == KnobWriteOutcome::Stale && !inj.stale_until.is_empty() {
                latched_at = Some(step);
                break;
            }
        }
        let at = latched_at.expect("p=1 produces a stale latch quickly");
        // While latched every write is stale without consuming RNG.
        inj.begin_step(at + 1, Seconds::new(at as f64 + 1.0));
        assert_eq!(inj.knob_write("x"), KnobWriteOutcome::Stale);
        // Other apps are unaffected by x's latch (they roll their own).
        assert!(inj.stale_until.contains_key("x"));
        // After expiry the latch clears.
        inj.begin_step(at + 6, Seconds::new(at as f64 + 6.0));
        let outcome = inj.knob_write("x");
        assert!(!matches!(outcome, KnobWriteOutcome::Apply) || inj.stale_until.is_empty());
    }

    #[test]
    fn stuck_meter_holds_the_reading() {
        let mut inj = FaultInjector::new(FaultConfig {
            meter_stuck_prob: 1.0,
            meter_stuck_steps: 3,
            ..FaultConfig::default()
        });
        inj.begin_step(0, Seconds::ZERO);
        let first = inj.observe_net(Watts::new(50.0)).unwrap();
        assert_eq!(first, Watts::new(50.0), "no noise configured");
        // The next three observations return the held value even though
        // the true power moved.
        for step in 1..=3u64 {
            inj.begin_step(step, Seconds::new(step as f64));
            assert_eq!(inj.observe_net(Watts::new(90.0)), Some(first));
        }
    }

    #[test]
    fn shared_bias_skews_every_sample_without_consuming_rng() {
        let mut inj = FaultInjector::new(FaultConfig {
            meter_bias_frac: 0.05,
            ..FaultConfig::default()
        });
        inj.begin_step(0, Seconds::ZERO);
        assert_eq!(inj.observe_net(Watts::new(100.0)), Some(Watts::new(105.0)));
        inj.begin_step(1, Seconds::new(0.1));
        assert_eq!(inj.observe_net(Watts::new(80.0)), Some(Watts::new(84.0)));
        // Bias is continuous: counted, but no discrete trace events and
        // no RNG draws that would perturb the other channels.
        assert!(inj.trace().is_empty());
        assert_eq!(inj.stats().meter_biased, 2);
        assert_eq!(inj.stats().total_events(), 0);
    }

    #[test]
    fn bias_composes_under_noise_draws_identically_to_unbiased() {
        // Common random numbers: the bias channel must not consume from
        // the meter stream, so the noise multipliers line up between a
        // biased and an unbiased run with the same seed.
        let run = |bias: f64| -> Vec<Option<Watts>> {
            let mut inj = FaultInjector::new(FaultConfig {
                meter_noise_sigma: 0.02,
                meter_bias_frac: bias,
                ..FaultConfig::default()
            });
            (0..50u64)
                .map(|s| {
                    inj.begin_step(s, Seconds::new(s as f64 * 0.1));
                    inj.observe_net(Watts::new(100.0))
                })
                .collect()
        };
        let plain = run(0.0);
        let biased = run(0.06);
        for (p, b) in plain.iter().zip(&biased) {
            let (p, b) = (p.expect("no dropouts"), b.expect("no dropouts"));
            assert!(
                (b.value() - p.value() * 1.06).abs() < 1e-9,
                "bias must scale the identical noisy sample: {p:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn crash_and_restart_cycle() {
        let mut inj = FaultInjector::new(FaultConfig {
            app_crash_prob: 1.0,
            app_restart_steps: 2,
            ..FaultConfig::default()
        });
        inj.begin_step(0, Seconds::ZERO);
        assert!(inj.crash_roll("bfs"));
        assert!(inj.is_crashed("bfs"));
        assert!(!inj.crash_roll("bfs"), "already down");
        inj.begin_step(1, Seconds::new(0.1));
        assert!(inj.restarts_due().is_empty());
        inj.begin_step(2, Seconds::new(0.2));
        assert_eq!(inj.restarts_due(), vec!["bfs".to_string()]);
        assert!(!inj.is_crashed("bfs"));
        let s = inj.stats();
        assert_eq!(s.app_crashes, 1);
        assert_eq!(s.app_restarts, 1);
    }

    #[test]
    fn channel_streams_are_deterministic_and_independent_per_tag() {
        let mut a = channel_stream(9, 0xA001);
        let mut a_again = channel_stream(9, 0xA001);
        let mut b = channel_stream(9, 0xB002);
        let first: f64 = a.gen_range(0.0..1.0);
        assert_eq!(first, a_again.gen_range(0.0..1.0), "same (seed, tag)");
        assert_ne!(first, b.gen_range(0.0..1.0), "different tag diverges");
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
