//! Demand response on one server: the datacenter tightens and relaxes
//! this server's power cap over a (compressed) day, and the mediator
//! rides the changes — spatial coordination under the loose cap,
//! duty-cycling under the tight one, and battery-backed consolidated
//! cycling during the emergency window.
//!
//! ```text
//! cargo run --release --example demand_response_day
//! ```

use powermed::esd::LeadAcidBattery;
use powermed::mediator::coordinator::Schedule;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes;

/// The day's cap schedule: (start second, cap).
const SCHEDULE: [(f64, f64); 5] = [
    (0.0, 110.0),   // overnight slack
    (30.0, 100.0),  // morning: loose cap
    (60.0, 80.0),   // afternoon peak shaving
    (90.0, 70.0),   // demand-response emergency
    (120.0, 100.0), // evening recovery
];

fn main() -> Result<(), CoreError> {
    let spec = ServerSpec::xeon_e5_2620();
    let battery = LeadAcidBattery::server_ups().with_soc(0.25);
    let mut sim = ServerSim::new(spec.clone(), Box::new(battery));
    let mut mediator = PowerMediator::new(
        PolicyKind::AppResEsdAware,
        spec.clone(),
        Watts::new(SCHEDULE[0].1),
    );

    let mix = mixes::mix(1).expect("mix 1: stream + kmeans");
    println!("workload: {}", mix.label());
    for app in mix.apps() {
        mediator.admit(&mut sim, app.clone())?;
    }

    let dt = Seconds::from_millis(100.0);
    let end = 150.0;
    let mut next_change = 1; // index into SCHEDULE
    let mut next_report = 10.0;
    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>7}  mode",
        "t", "cap", "net", "soc", "work%"
    );
    while sim.now().value() < end {
        if next_change < SCHEDULE.len() && sim.now().value() >= SCHEDULE[next_change].0 {
            let cap = Watts::new(SCHEDULE[next_change].1);
            println!("--- cap changes to {cap:.0} ---");
            mediator.set_cap(&mut sim, cap);
            next_change += 1;
        }
        let report = mediator.step(&mut sim, dt);
        if sim.now().value() >= next_report {
            next_report += 10.0;
            let mode = match mediator.schedule() {
                Schedule::Space { .. } => "space",
                Schedule::Alternate { .. } => "alternate",
                Schedule::Hybrid { .. } => "hybrid (pinned + rotating)",
                Schedule::EsdCycle { off, on, .. } => &format!(
                    "esd-cycle (off {:.1}s / on {:.1}s)",
                    off.value(),
                    on.value()
                ),
                Schedule::Infeasible => "parked",
            };
            let total_ops: f64 = mix.apps().iter().map(|a| sim.ops_done(a.name())).sum();
            let total_nocap: f64 = mix
                .apps()
                .iter()
                .map(|a| a.uncapped(&spec).throughput * sim.now().value())
                .sum();
            println!(
                "{:>5.0}s {:>6.0}W {:>8.1}W {:>8.1}% {:>6.1}%  {}",
                sim.now().value(),
                sim.cap().unwrap_or(Watts::ZERO).value(),
                report.net_power.value(),
                sim.esd().soc().value() * 100.0,
                100.0 * total_ops / total_nocap,
                mode
            );
        }
    }

    let meter = sim.meter();
    println!(
        "\nday summary: avg draw {:.1}, energy {:.0} kJ, cap violations {:.2}% of time",
        meter.average().unwrap_or(Watts::ZERO),
        meter.energy().value() / 1000.0,
        meter.compliance().violation_fraction() * 100.0
    );
    println!(
        "battery: {:.2} equivalent cycles over the day",
        sim.esd().stats().equivalent_cycles
    );
    Ok(())
}
