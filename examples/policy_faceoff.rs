//! Face-off: every power-management scheme on the same mix and cap.
//!
//! ```text
//! cargo run --release --example policy_faceoff [mix 1-15] [cap watts]
//! cargo run --release --example policy_faceoff 14 80
//! ```

use powermed::esd::{LeadAcidBattery, NoEsd};
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes;

fn main() -> Result<(), CoreError> {
    let mut args = std::env::args().skip(1);
    let mix_id: usize = args
        .next()
        .map(|s| s.parse().expect("mix id must be 1-15"))
        .unwrap_or(1);
    let cap_w: f64 = args
        .next()
        .map(|s| s.parse().expect("cap must be a number of watts"))
        .unwrap_or(100.0);
    let mix = mixes::mix(mix_id).expect("mix id must be 1-15");
    let cap = Watts::new(cap_w);
    let duration = Seconds::new(40.0);
    let spec = ServerSpec::xeon_e5_2620();

    println!(
        "{} at P_cap = {cap:.0}, {duration:.0} simulated\n",
        mix.label()
    );
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "policy",
        mix.app1.name(),
        mix.app2.name(),
        "mean",
        "violations",
        "avg power"
    );

    for kind in PolicyKind::all() {
        let mut sim = if kind.uses_esd() {
            ServerSim::new(
                spec.clone(),
                Box::new(LeadAcidBattery::server_ups().with_soc(0.3)),
            )
        } else {
            ServerSim::new(spec.clone(), Box::new(NoEsd))
        };
        let mut mediator = PowerMediator::new(kind, spec.clone(), cap);
        for app in mix.apps() {
            mediator.admit(&mut sim, app.clone())?;
        }
        mediator.run_for(&mut sim, duration, Seconds::from_millis(100.0));

        let norm = |name: &str, nocap: f64| sim.ops_done(name) / (nocap * duration.value());
        let n1 = norm(mix.app1.name(), mix.app1.uncapped(&spec).throughput);
        let n2 = norm(mix.app2.name(), mix.app2.uncapped(&spec).throughput);
        println!(
            "{:<20} {:>9.1}% {:>9.1}% {:>9.1}% {:>10.2}% {:>10.1}",
            kind.name(),
            n1 * 100.0,
            n2 * 100.0,
            (n1 + n2) / 2.0 * 100.0,
            sim.meter().compliance().violation_fraction() * 100.0,
            sim.meter().average().map(|w| w.value()).unwrap_or_default()
        );
    }
    println!("\n(normalized to each app's uncapped solo throughput)");
    Ok(())
}
