//! Online calibration in action: an unknown application arrives, the
//! runtime samples 10% of its knob settings and completes the rest by
//! collaborative filtering against previously seen applications, then
//! allocates power from the estimated utilities.
//!
//! ```text
//! cargo run --release --example online_calibration
//! ```

use powermed::esd::NoEsd;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::{KnobSetting, ServerSpec};
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::catalog;
use powermed::workloads::generator::WorkloadGenerator;

fn main() -> Result<(), CoreError> {
    let spec = ServerSpec::xeon_e5_2620();

    // A corpus of previously-profiled applications (perturbed variants,
    // so the arriving app itself is *not* in the corpus).
    let mut gen = WorkloadGenerator::new(7);
    let corpus = gen.variant_corpus(24, 0.25);
    println!("corpus: {} previously seen applications", corpus.len());

    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut mediator = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), Watts::new(100.0))
        .with_online_calibration(&corpus, 0.10);

    // Two "new" applications arrive.
    mediator.admit(&mut sim, catalog::bfs())?;
    mediator.admit(&mut sim, catalog::x264())?;
    println!(
        "online probes used: {} (vs {} for exhaustive profiling of both)",
        mediator.probes(),
        2 * spec.knob_grid().len()
    );

    // Compare the estimate against ground truth at a few settings.
    println!("\nestimate quality for bfs:");
    let truth = powermed::mediator::measurement::AppMeasurement::exhaustive(&spec, &catalog::bfs());
    let est = mediator.measurement("bfs").expect("calibrated");
    for (label, knob) in [
        ("min", KnobSetting::min_for(&spec)),
        (
            "mid",
            KnobSetting::max_for(&spec)
                .with_cores(4)
                .with_dram_limit(Watts::new(6.0)),
        ),
        ("max", KnobSetting::max_for(&spec)),
    ] {
        let idx = est.grid().index_of(knob).expect("on grid");
        println!(
            "  {label}: power {:.1} est vs {:.1} true; perf {:.0} est vs {:.0} true",
            est.power(idx),
            truth.power(idx),
            est.perf(idx),
            truth.perf(idx)
        );
    }

    // Run under the estimated utilities and check the cap held.
    mediator.run_for(&mut sim, Seconds::new(15.0), Seconds::from_millis(100.0));
    println!(
        "\nafter 15 s: bfs {:.0} ops, x264 {:.0} ops, violations {:.2}% of time",
        sim.ops_done("bfs"),
        sim.ops_done("x264"),
        sim.meter().compliance().violation_fraction() * 100.0
    );
    Ok(())
}
