//! Quickstart: mediate a power struggle between two co-located
//! applications under a 100 W server cap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use powermed::esd::NoEsd;
use powermed::mediator::coordinator::Schedule;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes;

fn main() -> Result<(), CoreError> {
    let spec = ServerSpec::xeon_e5_2620();
    let cap = Watts::new(100.0);
    println!(
        "platform: {} cores, P_idle {:.0}, P_cm {:.0}, cap {:.0}",
        spec.topology().total_cores(),
        spec.idle_power(),
        spec.chip_maintenance_power(),
        cap,
    );

    // A shared server with no battery, running the paper's mix-10.
    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut mediator = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), cap);

    let mix = mixes::mix(10).expect("Table II has 15 mixes");
    println!("hosting {}", mix.label());
    for app in mix.apps() {
        mediator.admit(&mut sim, app.clone())?;
    }

    // Show what the allocator decided.
    match mediator.schedule() {
        Schedule::Space { settings } => {
            println!("spatial coordination; per-app knobs:");
            for (name, idx) in settings {
                let knob = spec.knob_grid().get(*idx).expect("grid index");
                let power = mediator.measurement(name).expect("calibrated").power(*idx);
                println!("  {name:<10} {knob}  -> {power:.1}");
            }
        }
        other => println!("coordination: {other:?}"),
    }

    // Run for 20 seconds of simulated time.
    mediator.run_for(&mut sim, Seconds::new(20.0), Seconds::from_millis(100.0));

    println!("\nafter 20 s:");
    for app in mix.apps() {
        let done = sim.ops_done(app.name());
        let nocap = app.uncapped(&spec).throughput * 20.0;
        println!(
            "  {:<10} {:>12.0} ops ({:.1}% of uncapped)",
            app.name(),
            done,
            100.0 * done / nocap
        );
    }
    let meter = sim.meter();
    println!(
        "server: avg {:.1}, peak {:.1}, cap violations {:.2}% of time",
        meter.average().unwrap_or(Watts::ZERO),
        meter.peak(),
        meter.compliance().violation_fraction() * 100.0
    );
    Ok(())
}
