//! Flight recorder: attach the observability plane to a mediated run,
//! then read the story back — the event journal with causal ids and
//! the Prometheus exposition of the metrics registry.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```

use powermed::esd::NoEsd;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::telemetry::journal::{Obs, ObsConfig};
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes;

fn main() -> Result<(), CoreError> {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));

    // One shared recorder for simulator and mediator: their records
    // interleave on one timeline, stamped with poll sequence numbers.
    let obs = Obs::new(ObsConfig::default());
    sim.set_observability(obs.clone());
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec, Watts::new(100.0))
        .with_observability(obs.clone());

    let mix = mixes::mix(10).expect("Table II mix 10");
    for app in mix.apps() {
        med.admit(&mut sim, app.clone())?;
    }

    // Steady state, then a datacenter cap adjustment (event E1) that
    // forces a replan, then steady state under the tighter cap.
    let dt = Seconds::from_millis(100.0);
    med.run_for(&mut sim, Seconds::new(3.0), dt);
    med.set_cap(&mut sim, Watts::new(90.0));
    med.run_for(&mut sim, Seconds::new(3.0), dt);

    let (retained, evicted, total) = obs.journal_counts();
    println!("journal: {retained} records retained ({evicted} evicted of {total})\n");

    println!("the cap change and what it caused:");
    for record in obs
        .journal_snapshot()
        .iter()
        .skip_while(|r| r.at < Seconds::new(3.0))
        .take(8)
    {
        println!(
            "  seq {:>3}  poll {:>2}  t {:.1}s  {:?}",
            record.seq,
            record.poll,
            record.at.value(),
            record.event
        );
    }

    println!("\nmetrics exposition (Prometheus text):");
    for line in obs.metrics().to_prometheus().lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
