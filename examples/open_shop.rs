//! Open shop: a stream of finite jobs arrives at a capped server; the
//! mediator admits what fits (shrinking incumbents to make room), queues
//! the rest, and reapportions power on every arrival and departure —
//! events E2 and E3 under sustained churn.
//!
//! ```text
//! cargo run --release --example open_shop [seed]
//! ```

use std::collections::VecDeque;

use powermed::esd::NoEsd;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::mediator::CoreError;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::generator::WorkloadGenerator;
use powermed::workloads::profile::AppProfile;

const CAP: Watts = Watts::new(100.0);
const HORIZON: Seconds = Seconds::new(120.0);
const DT: Seconds = Seconds::new(0.1);
/// At most three co-located apps (12 cores / 4-core minimum).
const MAX_COLOCATED: usize = 3;

fn main() -> Result<(), CoreError> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);
    let spec = ServerSpec::xeon_e5_2620();

    // Script: ten arrivals over the horizon, each a finite job sized to
    // ~15 s of uncapped work, uniquely named so repeats of the same
    // benchmark can coexist.
    let mut gen = WorkloadGenerator::new(seed);
    let mut pending: VecDeque<(Seconds, AppProfile)> = gen
        .arrival_script(10, Seconds::new(HORIZON.value() * 0.6))
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let rate = arrival.profile.uncapped(&spec).throughput;
            let job = arrival
                .profile
                .clone()
                .with_name(format!("{}#{i}", arrival.profile.name()))
                .with_total_ops(rate * 15.0);
            (arrival.at, job)
        })
        .collect();

    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), CAP);
    let mut queue: VecDeque<AppProfile> = VecDeque::new();
    let mut admitted = 0usize;
    let mut finished = 0usize;

    println!(
        "open shop at {CAP:.0}, seed {seed}: 10 jobs over {:.0} s",
        HORIZON.value() * 0.6
    );
    while sim.now() < HORIZON {
        // New arrivals join the queue.
        while pending
            .front()
            .map(|(t, _)| *t <= sim.now())
            .unwrap_or(false)
        {
            let (_, job) = pending.pop_front().expect("checked");
            println!("{:>6.1}s  arrive  {}", sim.now().value(), job.name());
            queue.push_back(job);
        }
        // Admit from the queue while there is room.
        while sim.app_names().len() < MAX_COLOCATED {
            let Some(job) = queue.pop_front() else { break };
            let name = job.name().to_string();
            med.admit(&mut sim, job)?;
            admitted += 1;
            println!("{:>6.1}s  admit   {name}", sim.now().value());
        }
        let report = med.step(&mut sim, DT);
        for done in &report.completed {
            finished += 1;
            println!("{:>6.1}s  finish  {done}", sim.now().value());
        }
    }

    println!(
        "\n{admitted} admitted, {finished} finished, {} still hosted, {} queued",
        sim.app_names().len(),
        queue.len() + pending.len()
    );
    let meter = sim.meter();
    println!(
        "avg draw {:.1}, violations {:.2}% of time, {} replans",
        meter.average().unwrap_or(Watts::ZERO),
        meter.compliance().violation_fraction() * 100.0,
        med.replans()
    );
    Ok(())
}
