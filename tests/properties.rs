//! Cross-crate property-based tests on the system's core invariants.

use powermed::esd::{EnergyStorage, LeadAcidBattery, NoEsd};
use powermed::mediator::allocator::PowerAllocator;
use powermed::mediator::measurement::AppMeasurement;
use powermed::mediator::policy::{PolicyKind, PowerPolicy};
use powermed::mediator::runtime::PowerMediator;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Joules, Seconds, Watts};
use powermed::workloads::catalog;
use proptest::prelude::*;

fn measurements() -> Vec<AppMeasurement> {
    // Cached: this helper runs once per proptest case, and rebuilding
    // all twelve exhaustive surfaces each time dominates the suite's
    // wall-clock without the cache.
    let spec = ServerSpec::xeon_e5_2620();
    catalog::all()
        .iter()
        .map(|p| (*powermed::mediator::MeasurementCache::global().measure(&spec, p)).clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any pair of apps and any budget, the DP allocator's chosen
    /// settings never exceed their budgets, and budgets never exceed
    /// the total.
    #[test]
    fn prop_allocator_respects_budgets(a in 0usize..12, b in 0usize..12, budget in 5u32..45) {
        prop_assume!(a != b);
        let ms = measurements();
        let alloc = PowerAllocator::default();
        let apps = [(&ms[a], None), (&ms[b], None)];
        let out = alloc.apportion(&apps, Watts::new(budget as f64));
        let total: Watts = out.budgets.iter().copied().sum();
        prop_assert!(total <= Watts::new(budget as f64) + Watts::new(1e-9));
        for (i, m) in [&ms[a], &ms[b]].iter().enumerate() {
            if let Some(idx) = out.settings[i] {
                prop_assert!(m.power(idx) <= out.budgets[i] + Watts::new(1e-9));
            }
        }
    }

    /// The awareness hierarchy is monotone for any mix at any feasible
    /// spatial budget: App+Res-Aware's planning objective is at least
    /// App-Aware's, which is at least the fair split's.
    #[test]
    fn prop_awareness_monotone(a in 0usize..12, b in 0usize..12, budget in 16u32..40) {
        prop_assume!(a != b);
        let spec = ServerSpec::xeon_e5_2620();
        let ms = measurements();
        let apps = [("a", &ms[a]), ("b", &ms[b])];
        let budget = Watts::new(budget as f64);
        let objective = |kind: PolicyKind| {
            PowerPolicy::new(kind, spec.clone()).apportion(&apps, budget).objective
        };
        let aa = objective(PolicyKind::AppAware);
        let ar = objective(PolicyKind::AppResAware);
        prop_assert!(ar >= aa - 1e-9, "AppRes {ar} < AppAware {aa}");
    }

    /// The battery never fabricates energy, for any charge/discharge
    /// interleaving.
    #[test]
    fn prop_battery_energy_balance(ops in proptest::collection::vec((0u8..2, 5.0f64..90.0, 0.05f64..1.5), 1..40)) {
        let mut b = LeadAcidBattery::new(
            Joules::new(5000.0),
            powermed::units::Ratio::new(0.75),
            Watts::new(50.0),
            Watts::new(100.0),
        );
        let mut absorbed = Joules::ZERO;
        let mut delivered = Joules::ZERO;
        for (kind, p, dt) in ops {
            let p = Watts::new(p);
            let dt = Seconds::new(dt);
            if kind == 0 {
                absorbed += b.charge(p, dt) * dt;
            } else {
                delivered += b.discharge(p, dt) * dt;
            }
        }
        prop_assert!(delivered <= absorbed + Joules::new(1e-6));
        prop_assert!(b.stored() <= b.capacity() + Joules::new(1e-9));
    }

    /// Under any cap at or above idle+cm+floor, a mediated run never
    /// violates the cap by more than the RAPL best-effort margin.
    #[test]
    fn prop_mediated_run_respects_cap(cap in 85u32..120, mix_id in 1usize..16) {
        let spec = ServerSpec::xeon_e5_2620();
        let mix = powermed::workloads::mixes::mix(mix_id).unwrap();
        let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
        let mut med = PowerMediator::new(PolicyKind::AppResAware, spec, Watts::new(cap as f64));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).unwrap();
        }
        med.run_for(&mut sim, Seconds::new(5.0), Seconds::new(0.1));
        let c = sim.meter().compliance();
        prop_assert!(
            c.violation_fraction() < 0.02,
            "cap {cap}, {}: violations {}",
            mix.label(),
            c.violation_fraction()
        );
    }
}

#[test]
fn esd_trait_objects_are_interchangeable() {
    // The mediator must behave identically whether NoEsd or a fully
    // drained battery is attached (R4 engages only with usable storage).
    let spec = ServerSpec::xeon_e5_2620();
    let mix = powermed::workloads::mixes::mix(10).unwrap();
    let mut results = Vec::new();
    let esds: Vec<Box<dyn EnergyStorage>> = vec![
        Box::new(NoEsd),
        Box::new(LeadAcidBattery::server_ups()), // empty battery
    ];
    for esd in esds {
        let mut sim = ServerSim::new(spec.clone(), esd);
        let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), Watts::new(100.0));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).unwrap();
        }
        med.run_for(&mut sim, Seconds::new(5.0), Seconds::new(0.1));
        results.push(sim.ops_done("kmeans"));
    }
    assert!((results[0] - results[1]).abs() < 1e-6);
}
