//! End-to-end integration tests: every policy on representative mixes,
//! checking the global invariants the paper's system must uphold —
//! caps respected, work progressing, awareness hierarchy intact.

use powermed::esd::{LeadAcidBattery, NoEsd};
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes::{self, Mix};

const DT: Seconds = Seconds::new(0.1);

fn run_mix(kind: PolicyKind, mix: &Mix, cap: f64, secs: f64) -> (ServerSim, f64) {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = if kind.uses_esd() {
        ServerSim::new(
            spec.clone(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.3)),
        )
    } else {
        ServerSim::new(spec.clone(), Box::new(NoEsd))
    };
    let mut med = PowerMediator::new(kind, spec.clone(), Watts::new(cap));
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    med.run_for(&mut sim, Seconds::new(secs), DT);
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * secs))
        .sum::<f64>()
        / 2.0;
    (sim, mean)
}

#[test]
fn every_policy_respects_the_loose_cap() {
    for mix_id in [1, 8, 10] {
        let mix = mixes::mix(mix_id).unwrap();
        for kind in PolicyKind::all() {
            let (sim, mean) = run_mix(kind, &mix, 100.0, 10.0);
            let violations = sim.meter().compliance().violation_fraction();
            // The utility-unaware baselines may overshoot slightly —
            // Util-Unaware from best-effort RAPL, Server+Res-Aware from
            // picking settings by catalog-average power rather than the
            // app's own. The utility-aware schemes must be clean.
            let tolerance = match kind {
                PolicyKind::UtilUnaware | PolicyKind::ServerResAware => 1.0,
                _ => 0.02,
            };
            assert!(
                violations <= tolerance,
                "{kind} on {}: violation fraction {violations}",
                mix.label()
            );
            // Even when tolerated, overshoot must be marginal.
            assert!(
                sim.meter().compliance().worst_overshoot < Watts::new(5.0),
                "{kind} on {}: worst overshoot {:?}",
                mix.label(),
                sim.meter().compliance().worst_overshoot
            );
            assert!(
                mean > 0.3,
                "{kind} on {}: mean normalized perf {mean}",
                mix.label()
            );
        }
    }
}

#[test]
fn every_policy_survives_the_stringent_cap() {
    let mix = mixes::mix(1).unwrap();
    for kind in PolicyKind::all() {
        let (sim, mean) = run_mix(kind, &mix, 80.0, 30.0);
        for app in mix.apps() {
            assert!(
                sim.ops_done(app.name()) > 0.0,
                "{kind}: {} starved at 80 W",
                app.name()
            );
        }
        assert!(mean > 0.1, "{kind}: mean {mean} at 80 W");
    }
}

#[test]
fn awareness_hierarchy_holds_on_average() {
    // A cheap version of Fig. 8a's ordering over three mixes.
    let ids = [1, 10, 14];
    let mut means = std::collections::BTreeMap::new();
    for kind in [
        PolicyKind::UtilUnaware,
        PolicyKind::AppAware,
        PolicyKind::AppResAware,
    ] {
        let total: f64 = ids
            .iter()
            .map(|id| run_mix(kind, &mixes::mix(*id).unwrap(), 100.0, 10.0).1)
            .sum();
        means.insert(kind.name(), total / ids.len() as f64);
    }
    assert!(
        means["App+Res-Aware"] >= means["App-Aware"] - 1e-9,
        "{means:?}"
    );
    assert!(means["App+Res-Aware"] > means["Util-Unaware"], "{means:?}");
}

#[test]
fn esd_scheme_beats_non_esd_under_emergency_cap() {
    let mix = mixes::mix(1).unwrap();
    let (_, without) = run_mix(PolicyKind::AppResAware, &mix, 70.0, 40.0);
    let (sim, with) = run_mix(PolicyKind::AppResEsdAware, &mix, 70.0, 40.0);
    assert!(
        with > without + 0.05,
        "ESD should rescue the 70 W cap: {with:.3} vs {without:.3}"
    );
    assert!(
        sim.meter().compliance().violation_fraction() < 0.05,
        "ESD scheme must stay within the cap"
    );
}

#[test]
fn all_fifteen_mixes_complete_under_app_res_aware() {
    for mix in mixes::table2() {
        let (sim, mean) = run_mix(PolicyKind::AppResAware, &mix, 100.0, 5.0);
        assert!(mean > 0.3, "{}: mean {mean}", mix.label());
        assert!(sim.meter().compliance().violation_fraction() < 0.02);
    }
}
