//! Integration tests for the Accountant's dynamic events (Sec. III-C):
//! cap changes (E1), arrivals (E2), departures (E3) and phase-driven
//! drift (E4), exercised end-to-end through the mediator.

use powermed::esd::NoEsd;
use powermed::mediator::coordinator::Schedule;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Seconds, Watts};
use powermed::workloads::catalog;
use powermed::workloads::phases::{Phase, PhaseTrack};

const DT: Seconds = Seconds::new(0.1);

fn setup(kind: PolicyKind, cap: f64) -> (ServerSim, PowerMediator) {
    let spec = ServerSpec::xeon_e5_2620();
    let sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let med = PowerMediator::new(kind, spec, Watts::new(cap));
    (sim, med)
}

#[test]
fn e1_cap_drop_and_recovery_switch_modes() {
    let (mut sim, mut med) = setup(PolicyKind::AppResAware, 100.0);
    med.admit(&mut sim, catalog::stream()).unwrap();
    med.admit(&mut sim, catalog::kmeans()).unwrap();
    assert!(matches!(med.schedule(), Schedule::Space { .. }));

    med.set_cap(&mut sim, Watts::new(80.0));
    assert!(matches!(med.schedule(), Schedule::Alternate { .. }));
    med.run_for(&mut sim, Seconds::new(5.0), DT);

    med.set_cap(&mut sim, Watts::new(100.0));
    assert!(matches!(med.schedule(), Schedule::Space { .. }));
    med.run_for(&mut sim, Seconds::new(5.0), DT);
    assert!(sim.meter().compliance().violation_fraction() < 0.02);
}

#[test]
fn e2_arrival_forces_existing_app_to_share() {
    let (mut sim, mut med) = setup(PolicyKind::AppResAware, 100.0);
    med.admit(&mut sim, catalog::sssp()).unwrap();
    med.run_for(&mut sim, Seconds::new(5.0), DT);
    let solo_power = med
        .accountant()
        .allocation("sssp")
        .expect("allocated")
        .value();

    med.admit(&mut sim, catalog::x264()).unwrap();
    med.run_for(&mut sim, Seconds::new(5.0), DT);
    let shared_power = med
        .accountant()
        .allocation("sssp")
        .expect("still allocated")
        .value();
    assert!(
        shared_power < solo_power,
        "sssp must shed power: {solo_power:.1} -> {shared_power:.1}"
    );
    assert!(sim.ops_done("x264") > 0.0);
}

#[test]
fn e3_departure_frees_the_whole_budget() {
    let spec = ServerSpec::xeon_e5_2620();
    let (mut sim, mut med) = setup(PolicyKind::AppResAware, 90.0);
    let short = catalog::finite(catalog::pagerank(), &spec, Seconds::new(3.0));
    med.admit(&mut sim, short).unwrap();
    med.admit(&mut sim, catalog::kmeans()).unwrap();
    med.run_for(&mut sim, Seconds::new(30.0), DT);

    assert_eq!(sim.app_names(), vec!["kmeans".to_string()]);
    // kmeans ends up with (nearly) its solo operating point.
    match med.schedule() {
        Schedule::Space { settings } => {
            let idx = settings["kmeans"];
            let m = med.measurement("kmeans").unwrap();
            assert!(m.perf(idx) / m.nocap_perf() > 0.9);
        }
        other => panic!("expected Space, got {other:?}"),
    }
}

#[test]
fn e4_phase_change_triggers_recalibration() {
    let (mut sim, mut med) = setup(PolicyKind::AppResAware, 100.0);
    // A kmeans that turns memory-bound after 5 s of activity: its cores
    // stall, drawn power departs from the allocation, and E4 must fire.
    let phased = catalog::kmeans().with_phases(PhaseTrack::new(vec![
        Phase {
            compute_scale: 1.0,
            memory_scale: 1.0,
            duration: Seconds::new(5.0),
        },
        Phase {
            compute_scale: 0.1,
            memory_scale: 40.0,
            duration: Seconds::new(30.0),
        },
    ]));
    med.admit(&mut sim, phased).unwrap();
    med.admit(&mut sim, catalog::x264()).unwrap();
    let replans_before = med.replans();
    let probes_before = med.probes();
    med.run_for(&mut sim, Seconds::new(12.0), DT);
    assert!(
        med.replans() > replans_before,
        "phase change should trigger re-planning"
    );
    assert!(
        med.probes() > probes_before,
        "E4 should trigger re-calibration probes"
    );
}

#[test]
fn rapid_event_storm_stays_consistent() {
    // Hammer the mediator with interleaved events; invariants must hold.
    let spec = ServerSpec::xeon_e5_2620();
    let (mut sim, mut med) = setup(PolicyKind::AppResAware, 100.0);
    med.admit(&mut sim, catalog::stream()).unwrap();
    for (i, cap) in [95.0, 85.0, 110.0, 80.0, 100.0].iter().enumerate() {
        med.set_cap(&mut sim, Watts::new(*cap));
        if i == 1 {
            med.admit(&mut sim, catalog::bfs()).unwrap();
        }
        if i == 3 {
            let short = catalog::finite(catalog::ferret(), &spec, Seconds::new(0.5));
            med.admit(&mut sim, short).unwrap();
        }
        med.run_for(&mut sim, Seconds::new(4.0), DT);
    }
    // Give the tail room to drain, then ferret (0.5 s of work) must
    // have finished and departed.
    med.run_for(&mut sim, Seconds::new(10.0), DT);
    assert!(!sim.app_names().contains(&"ferret".to_string()));
    // Survivors made progress.
    assert!(sim.ops_done("stream") > 0.0);
    assert!(sim.ops_done("bfs") > 0.0);
}
