//! End-to-end flight-recorder tests through the public facade: a run
//! with the observability plane attached must behave bit-identically to
//! one without, while the journal and registry tell the run's story.

use powermed::esd::NoEsd;
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::telemetry::journal::{Obs, ObsEvent};
use powermed::units::{Seconds, Watts};
use powermed::workloads::mixes;

const DT: Seconds = Seconds::new(0.1);

/// Runs mix 10 under AppResAware with a mid-run cap drop (event E1),
/// optionally flight-recorded; returns per-app work and compliance,
/// plus the recorder when one was attached.
fn run(observed: bool) -> (Vec<f64>, f64, Option<Obs>) {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec, Watts::new(100.0));
    let obs = observed.then(Obs::default);
    if let Some(obs) = &obs {
        sim.set_observability(obs.clone());
        med = med.with_observability(obs.clone());
    }
    let mix = mixes::mix(10).expect("Table II mix 10");
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    med.run_for(&mut sim, Seconds::new(3.0), DT);
    // 90 W still clears the ~70 W idle + chip-maintenance floor plus
    // the two per-app minimums, so the replan stays feasible.
    med.set_cap(&mut sim, Watts::new(90.0));
    med.run_for(&mut sim, Seconds::new(3.0), DT);
    let work = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()))
        .collect::<Vec<_>>();
    let violations = sim.meter().compliance().violation_fraction();
    (work, violations, obs)
}

#[test]
fn attaching_the_flight_recorder_never_changes_the_physics() {
    let (base_work, base_viol, _) = run(false);
    let (obs_work, obs_viol, _) = run(true);
    assert_eq!(base_work, obs_work, "per-app work must be bit-identical");
    assert_eq!(base_viol, obs_viol, "compliance must be bit-identical");
}

#[test]
fn the_journal_tells_the_cap_change_story() {
    let (_, _, obs) = run(true);
    let obs = obs.expect("observed run");
    let journal = obs.journal_snapshot();

    // The E1 cap change is recorded at its simulation time, and a
    // replan (schedule + per-app shares) follows in the same poll.
    let e1 = journal
        .iter()
        .find(|r| matches!(r.event, ObsEvent::CapChanged { cap_w } if cap_w == 90.0))
        .expect("the mid-run cap drop is journaled");
    assert!(
        (e1.at.value() - 3.0).abs() < 1e-9,
        "stamped at sim time 3 s"
    );
    assert!(
        journal
            .iter()
            .any(|r| r.seq > e1.seq && matches!(r.event, ObsEvent::Planned { .. })),
        "the cap change triggers a recorded replan"
    );
    assert!(
        journal
            .iter()
            .any(|r| r.seq > e1.seq && matches!(r.event, ObsEvent::Allocation { .. })),
        "the replan records per-app shares"
    );

    // Poll causal ids are monotone and polls are counted: 6 s at 0.1 s.
    let metrics = obs.metrics();
    assert_eq!(metrics.counter("polls_total"), 60);
    assert!(journal.windows(2).all(|w| w[0].poll <= w[1].poll));

    // Prometheus exposition carries the event families end-to-end.
    let text = metrics.to_prometheus();
    assert!(text.contains("events_total"));
    assert!(text.contains("events_by_kind_total{kind=\"cap_changed\"}"));
}
