//! Cluster-scale integration tests (Sec. IV-D): peak shaving across a
//! small fleet with all three cluster policies.

use powermed::cluster::manager::{ClusterManager, ClusterPolicy};
use powermed::cluster::trace::ClusterPowerTrace;
use powermed::units::{Ratio, Seconds, Watts};

fn trace(servers: usize, shave: f64) -> ClusterPowerTrace {
    ClusterPowerTrace::synthetic_diurnal(servers, Seconds::new(120.0), 5)
        .peak_shaved(Ratio::new(shave))
        .clamped_below(Watts::new(78.0 * servers as f64))
}

#[test]
fn all_policies_produce_sane_aggregates() {
    let mgr = ClusterManager::new(3, 1);
    for policy in [
        ClusterPolicy::EqualRapl,
        ClusterPolicy::EqualOurs,
        ClusterPolicy::ConsolidationMigration,
    ] {
        let report = mgr.run(policy, &trace(3, 0.30), Seconds::new(0.5));
        assert!(
            report.aggregate_normalized_perf > 0.0 && report.aggregate_normalized_perf <= 1.001,
            "{policy}: {report:?}"
        );
        assert_eq!(report.per_app_perf.len(), 6, "{policy}: 2 apps x 3 servers");
        assert!(report.energy.value() > 0.0);
    }
}

#[test]
fn stringency_ordering_for_our_policy() {
    let mgr = ClusterManager::new(3, 1);
    let mild = mgr
        .run(ClusterPolicy::EqualOurs, &trace(3, 0.15), Seconds::new(0.5))
        .aggregate_normalized_perf;
    let harsh = mgr
        .run(ClusterPolicy::EqualOurs, &trace(3, 0.45), Seconds::new(0.5))
        .aggregate_normalized_perf;
    assert!(
        mild > harsh,
        "tighter shaving must cost performance: {mild:.3} vs {harsh:.3}"
    );
}

#[test]
fn ours_is_more_power_efficient_than_rapl() {
    let mgr = ClusterManager::new(3, 1);
    let t = trace(3, 0.45);
    let rapl = mgr.run(ClusterPolicy::EqualRapl, &t, Seconds::new(0.5));
    let ours = mgr.run(ClusterPolicy::EqualOurs, &t, Seconds::new(0.5));
    assert!(
        ours.perf_per_kilojoule > rapl.perf_per_kilojoule,
        "ours {:.5} vs rapl {:.5} perf/kJ",
        ours.perf_per_kilojoule,
        rapl.perf_per_kilojoule
    );
}
