//! Offline shim for `serde_derive`.
//!
//! The workspace builds in environments with no crates-io access, so the
//! real serde is replaced by this stub. Nothing in the tree serializes
//! through serde traits yet — the derives exist so type definitions keep
//! their upstream-compatible annotations — so the derive macros accept
//! the input (including `#[serde(...)]` helper attributes) and expand to
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
