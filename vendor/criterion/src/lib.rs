//! Offline shim for `criterion`.
//!
//! Implements the API the workspace's benches use — `bench_function`,
//! `benchmark_group`/`bench_with_input`, `criterion_group!`,
//! `criterion_main!` — as a plain wall-clock runner: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean time per iteration is printed. No
//! statistics, plots, or baselines; good enough to smoke-test the hot
//! paths and compare orders of magnitude.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

/// Times one closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
///
/// Beyond the upstream API, every finished benchmark's mean
/// seconds-per-iteration is retained and exposed through
/// [`Criterion::results`], so harness binaries can persist the numbers
/// (e.g. into `BENCH_harness.json`) instead of scraping stdout.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
        self.record(name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// `(name, mean seconds per iteration)` for every benchmark run so
    /// far, in execution order.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    fn record(&mut self, name: &str, b: &Bencher) {
        if b.iters > 0 {
            self.results
                .push((name.to_string(), b.elapsed.as_secs_f64() / b.iters as f64));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.0);
        report(&full, &b);
        self.parent.record(&full, &b);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<44} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<44} {value:>10.3} {unit}/iter  ({} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
