//! Offline shim for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses — the
//! `proptest!`/`prop_assert!`/`prop_assume!` macros, range and tuple
//! strategies, and `collection::vec` — backed by a deterministic
//! splitmix64 generator seeded from the test name. Unlike upstream
//! there is no shrinking and no persistence of failing seeds; a failing
//! case panics with the case index so it can be replayed (runs are
//! fully deterministic).

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property gets a distinct but
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't satisfy preconditions.
    Reject,
}

/// Value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element count for [`vec`]: a fixed size or a `min..max` range.
    pub struct SizeRange {
        min: usize,
        /// Exclusive, matching proptest's `Range<usize>` convention.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims to keep the suite
        // quick while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig;
}

#[doc(hidden)]
pub fn __run_cases<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (cfg.cases as u64) * 256;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(stringify!($name), &__cfg, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}
