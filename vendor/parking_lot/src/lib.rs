//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's poison-free
//! signatures (`lock()`/`read()`/`write()` return guards directly). A
//! poisoned std lock is recovered via `into_inner` on the poison error,
//! matching parking_lot's behavior of not propagating panics to other
//! lock holders.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
