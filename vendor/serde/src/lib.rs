//! Offline shim for `serde`.
//!
//! Re-exports the no-op [`serde_derive`] macros and provides empty
//! marker traits so `use serde::{Serialize, Deserialize}` and
//! `#[derive(serde::Serialize, serde::Deserialize)]` compile unchanged.
//! Swap back to the real serde by restoring the crates-io entries in the
//! workspace `Cargo.toml` — no source changes are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
