//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`
//! seeded via `seed_from_u64`, `Rng::gen_range` over integer/float
//! ranges, and the `SliceRandom` helpers — on top of a splitmix64
//! generator. The sequences differ from upstream rand's ChaCha stream,
//! but every consumer in-tree only relies on determinism for a fixed
//! seed, which this preserves.

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }

        /// Next raw 64-bit output (splitmix64 step).
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_seed_u64(seed)
    }
}

/// Core sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges `gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64<R: Rng>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod seq {
    use super::Rng;

    /// Slice sampling helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            // Partial Fisher-Yates over indices: distinct picks, stable cost.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let take = amount.min(self.len());
            for i in 0..take {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(take);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
