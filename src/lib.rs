//! # powermed — mediating power struggles on a shared server
//!
//! A full reproduction, as a Rust library, of *"Mediating Power Struggles
//! on a Shared Server"* (Narayanan & Sivasubramaniam, ISPASS 2020): a
//! runtime that treats a server's power budget as an **indirectly shared
//! resource**, explicitly apportioning it across co-located applications,
//! across each application's direct resources (frequency, cores, DRAM
//! power), across time (duty cycling), and through a server-local
//! battery (Eq. 5 consolidated cycling).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`units`] | `powermed-units` | typed watts/joules/hertz/seconds |
//! | [`server`] | `powermed-server` | the simulated Xeon platform: DVFS, RAPL, PC6, power model |
//! | [`workloads`] | `powermed-workloads` | the benchmark catalog and Table II mixes |
//! | [`esd`] | `powermed-esd` | Lead-Acid / ideal energy storage models |
//! | [`telemetry`] | `powermed-telemetry` | heartbeats, power meters, trace recording, flight-recorder journal + metrics |
//! | [`cf`] | `powermed-cf` | collaborative filtering for online calibration |
//! | [`sim`] | `powermed-sim` | the discrete-time simulation engine |
//! | [`mediator`] | `powermed-core` | allocator, coordinator, accountant, the five policies |
//! | [`cluster`] | `powermed-cluster` | cluster-scale peak shaving |
//!
//! # Quickstart
//!
//! ```
//! use powermed::mediator::policy::PolicyKind;
//! use powermed::mediator::runtime::PowerMediator;
//! use powermed::esd::NoEsd;
//! use powermed::server::ServerSpec;
//! use powermed::sim::engine::ServerSim;
//! use powermed::units::{Seconds, Watts};
//! use powermed::workloads::mixes;
//!
//! let spec = ServerSpec::xeon_e5_2620();
//! let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
//! let mut mediator = PowerMediator::new(PolicyKind::AppResAware, spec, Watts::new(100.0));
//!
//! let mix = mixes::mix(10).expect("Table II mix");
//! for app in mix.apps() {
//!     mediator.admit(&mut sim, app.clone())?;
//! }
//! mediator.run_for(&mut sim, Seconds::new(5.0), Seconds::from_millis(100.0));
//! assert!(sim.ops_done("pagerank") > 0.0);
//! assert!(sim.meter().compliance().violation_fraction() < 0.01);
//! # Ok::<(), powermed::mediator::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use powermed_cf as cf;
pub use powermed_cluster as cluster;
pub use powermed_core as mediator;
pub use powermed_esd as esd;
pub use powermed_server as server;
pub use powermed_sim as sim;
pub use powermed_telemetry as telemetry;
pub use powermed_units as units;
pub use powermed_workloads as workloads;
