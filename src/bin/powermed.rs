//! `powermed` — command-line front end for the power-struggle mediator.
//!
//! ```text
//! powermed simulate --mix 14 --cap 80 --policy app-res-esd --battery
//! powermed cluster --servers 10 --shave 30 --policy equal-ours
//! powermed export --dir out
//! powermed list
//! ```

use std::collections::BTreeMap;

use powermed::cluster::manager::{ClusterManager, ClusterPolicy};
use powermed::cluster::trace::ClusterPowerTrace;
use powermed::esd::{LeadAcidBattery, NoEsd};
use powermed::mediator::policy::PolicyKind;
use powermed::mediator::runtime::PowerMediator;
use powermed::server::ServerSpec;
use powermed::sim::engine::ServerSim;
use powermed::units::{Ratio, Seconds, Watts};
use powermed::workloads::{catalog, mixes};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, flags) = parse(&args);
    let result = match command.as_deref() {
        Some("simulate") => simulate(&flags),
        Some("cluster") => cluster(&flags),
        Some("export") => export(&flags),
        Some("list") => {
            list();
            Ok(())
        }
        _ => {
            usage();
            Ok(())
        }
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

fn usage() {
    println!(
        "powermed — mediating power struggles on a shared server\n\n\
         USAGE:\n  powermed <command> [--flag value]...\n\n\
         COMMANDS:\n\
         \x20 simulate   run one mix under one policy\n\
         \x20            --mix 1..15 (default 1)   --cap watts (default 100)\n\
         \x20            --policy util-unaware|server-res|app|app-res|app-res-esd (default app-res)\n\
         \x20            --duration seconds (default 30)   --battery   --slo 0.8 (on app1)\n\
         \x20 cluster    peak-shave a fleet\n\
         \x20            --servers n (default 10)   --shave percent (default 30)\n\
         \x20            --policy equal-rapl|equal-ours|unequal-ours|consolidation (default equal-ours)\n\
         \x20 export     write key figure data as CSV\n\
         \x20            --dir path (default out)\n\
         \x20 list       print the application catalog and Table II mixes"
    );
}

fn parse(args: &[String]) -> (Option<String>, BTreeMap<String, String>) {
    let mut flags = BTreeMap::new();
    let command = args.first().cloned();
    let mut i = 1;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            let consumes = !value.starts_with("--") && !value.is_empty();
            flags.insert(
                name.to_string(),
                if consumes { value } else { "true".into() },
            );
            i += if consumes { 2 } else { 1 };
        } else {
            i += 1;
        }
    }
    (command, flags)
}

fn flag_f64(flags: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn policy_kind(name: &str) -> Result<PolicyKind, String> {
    Ok(match name {
        "util-unaware" => PolicyKind::UtilUnaware,
        "server-res" => PolicyKind::ServerResAware,
        "app" => PolicyKind::AppAware,
        "app-res" => PolicyKind::AppResAware,
        "app-res-esd" => PolicyKind::AppResEsdAware,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn simulate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mix_id = flag_f64(flags, "mix", 1.0)? as usize;
    let cap = Watts::new(flag_f64(flags, "cap", 100.0)?);
    let duration = Seconds::new(flag_f64(flags, "duration", 30.0)?);
    let kind = policy_kind(flags.get("policy").map(String::as_str).unwrap_or("app-res"))?;
    let battery = flags.contains_key("battery") || kind.uses_esd();
    let slo = flags
        .get("slo")
        .map(|v| v.parse::<f64>())
        .transpose()
        .map_err(|_| "--slo expects a fraction".to_string())?;
    if let Some(target) = slo {
        if !(0.0..=1.0).contains(&target) || target == 0.0 {
            return Err(format!("--slo expects a fraction in (0, 1], got {target}"));
        }
    }

    let mix = mixes::mix(mix_id).ok_or_else(|| format!("mix {mix_id} not in 1..=15"))?;
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = if battery {
        ServerSim::new(
            spec.clone(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.3)),
        )
    } else {
        ServerSim::new(spec.clone(), Box::new(NoEsd))
    };
    let mut med = PowerMediator::new(kind, spec.clone(), cap);
    if slo.is_some() {
        med = med.with_slo_awareness();
    }
    println!(
        "simulating {} at {cap:.0} under {} for {duration:.0}{}",
        mix.label(),
        kind.name(),
        if battery { " (with Lead-Acid UPS)" } else { "" }
    );
    let mut apps = vec![mix.app1.clone(), mix.app2.clone()];
    if let Some(target) = slo {
        apps[0] = apps[0].clone().with_slo(target);
        println!(
            "  {} is latency-critical (SLO {:.0}%)",
            apps[0].name(),
            target * 100.0
        );
    }
    for app in &apps {
        med.admit(&mut sim, app.clone())
            .map_err(|e| e.to_string())?;
    }
    med.run_for(&mut sim, duration, Seconds::from_millis(100.0));

    for app in &apps {
        let norm = sim.ops_done(app.name()) / (app.uncapped(&spec).throughput * duration.value());
        println!(
            "  {:<12} {:>10.0} ops  ({:>5.1}% of uncapped)",
            app.name(),
            sim.ops_done(app.name()),
            norm * 100.0
        );
    }
    let meter = sim.meter();
    println!(
        "server: avg {:.1}, peak {:.1}, violations {:.2}% of time",
        meter.average().unwrap_or(Watts::ZERO),
        meter.peak(),
        meter.compliance().violation_fraction() * 100.0
    );
    Ok(())
}

fn cluster(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let servers = flag_f64(flags, "servers", 10.0)? as usize;
    let shave = flag_f64(flags, "shave", 30.0)? / 100.0;
    let policy = match flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("equal-ours")
    {
        "equal-rapl" => ClusterPolicy::EqualRapl,
        "equal-ours" => ClusterPolicy::EqualOurs,
        "unequal-ours" => ClusterPolicy::UnequalOurs,
        "consolidation" => ClusterPolicy::ConsolidationMigration,
        other => return Err(format!("unknown cluster policy {other:?}")),
    };
    if !(0.0..1.0).contains(&shave) {
        return Err("--shave expects a percent in [0, 100)".into());
    }
    let trace = ClusterPowerTrace::synthetic_diurnal(servers, Seconds::new(480.0), 42)
        .peak_shaved(Ratio::new(shave))
        .clamped_below(Watts::new(78.0 * servers as f64));
    println!(
        "cluster of {servers} servers, shaving {:.0}% of peak, policy {policy}",
        shave * 100.0
    );
    let report = ClusterManager::new(servers, 7).run(policy, &trace, Seconds::new(0.5));
    println!(
        "aggregate normalized performance: {:.1}%",
        report.aggregate_normalized_perf * 100.0
    );
    println!(
        "energy {:.0} kJ, efficiency {:.3} perf/MJ",
        report.energy.value() / 1000.0,
        report.perf_per_kilojoule * 1000.0
    );
    Ok(())
}

fn export(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let dir = flags.get("dir").cloned().unwrap_or_else(|| "out".into());
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let spec = ServerSpec::xeon_e5_2620();

    // Utility curves for every catalog application (Fig. 2 data).
    let mut csv = String::from("app,budget_w,normalized_perf\n");
    for profile in catalog::all() {
        let m = powermed::mediator::measurement::AppMeasurement::exhaustive(&spec, &profile);
        let family = m.feasible_indices();
        let curve = powermed::mediator::utility::UtilityCurve::build(
            &m,
            &family,
            Watts::new(30.0),
            Watts::new(1.0),
        );
        let nocap = m.nocap_perf();
        for p in curve.points() {
            csv.push_str(&format!(
                "{},{},{:.6}\n",
                profile.name(),
                p.budget.value(),
                p.perf / nocap
            ));
        }
    }
    write(&dir, "utility_curves.csv", &csv)?;

    // Cluster cap schedules (Fig. 12a data).
    let demand = ClusterPowerTrace::synthetic_diurnal(10, Seconds::new(480.0), 42);
    let mut csv = String::from("shave,time_s,cap_w\n");
    for shave in [0.15, 0.30, 0.45] {
        let caps = demand
            .peak_shaved(Ratio::new(shave))
            .clamped_below(Watts::new(780.0));
        for (t, w) in caps.samples() {
            csv.push_str(&format!(
                "{:.0},{},{:.1}\n",
                shave * 100.0,
                t.value(),
                w.value()
            ));
        }
    }
    write(&dir, "cluster_caps.csv", &csv)?;

    // Table II.
    let mut csv = String::from("mix,app1,app2\n");
    for m in mixes::table2() {
        csv.push_str(&format!("{},{},{}\n", m.id.0, m.app1.name(), m.app2.name()));
    }
    write(&dir, "mixes.csv", &csv)?;

    println!("wrote utility_curves.csv, cluster_caps.csv, mixes.csv to {dir}/");
    println!("(per-figure series are printed by `cargo run -p powermed-bench --bin <figN>`)");
    Ok(())
}

fn write(dir: &str, file: &str, contents: &str) -> Result<(), String> {
    std::fs::write(format!("{dir}/{file}"), contents).map_err(|e| e.to_string())
}

fn list() {
    println!("application catalog:");
    let spec = ServerSpec::xeon_e5_2620();
    for p in catalog::all() {
        let op = p.uncapped(&spec);
        println!(
            "  {:<12} {:<10} uncapped {:>8.0} ops/s at {:>5.1} W dynamic",
            p.name(),
            format!("({})", p.category()),
            op.throughput,
            op.dynamic_power.value()
        );
    }
    println!("\nTable II mixes:");
    for m in mixes::table2() {
        println!("  {}", m.label());
    }
}
